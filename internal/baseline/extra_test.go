package baseline_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/baseline"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// TestHistLowerBound: every statistic bound stays at or below the exact TED
// on random pairs — the HIST filter's correctness (Kailing et al.).
func TestHistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	lt := tree.NewLabelTable()
	for i := 0; i < 400; i++ {
		a := randomTree(rng, 20, lt)
		b := randomTree(rng, 20, lt)
		d := ted.Distance(a, b)
		lb := baseline.HistLowerBound(baseline.NewHistProfile(a), baseline.NewHistProfile(b))
		if lb > d {
			t.Fatalf("hist bound %d > TED %d\n%s\n%s",
				lb, d, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

// TestHistProfileIdentity: the bound of a tree against itself is zero, and
// the bound is symmetric.
func TestHistProfileIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		a := randomTree(rng, 30, lt)
		pa := baseline.NewHistProfile(a)
		if lb := baseline.HistLowerBound(pa, pa); lb != 0 {
			t.Fatalf("self bound %d", lb)
		}
		b := randomTree(rng, 30, lt)
		pb := baseline.NewHistProfile(b)
		if baseline.HistLowerBound(pa, pb) != baseline.HistLowerBound(pb, pa) {
			t.Fatal("hist bound asymmetric")
		}
	}
}

// TestHistBoundFigure3 pins the bound on §2's worked example (TED = 3): the
// two trees share size, label multiset, leaf count, height, *and* degree
// histogram ({0:2, 1:1, 2:1} both) — every HIST statistic is blind to the
// pair, so the bound is 0 and HIST cannot prune it at any τ. This is
// exactly the weakness of statistics filters the traversal-string and
// subgraph filters fix (both separate this pair).
func TestHistBoundFigure3(t *testing.T) {
	lt := tree.NewLabelTable()
	t1 := tree.MustParseBracket("{l1{l2}{l1{l3}}}", lt)
	t2 := tree.MustParseBracket("{l1{l2{l1}{l3}}}", lt)
	lb := baseline.HistLowerBound(baseline.NewHistProfile(t1), baseline.NewHistProfile(t2))
	if lb != 0 {
		t.Fatalf("hist bound = %d, want 0 (all statistics coincide)", lb)
	}
}

// TestEulerString pins the tour on a hand-built tree and checks the length
// invariant on random trees.
func TestEulerString(t *testing.T) {
	lt := tree.NewLabelTable()
	// {a{b}{c}}: tour a b /b c /c /a with open = 2L, close = 2L+1.
	tr := tree.MustParseBracket("{a{b}{c}}", lt)
	a, b, c := mustID(t, lt, "a"), mustID(t, lt, "b"), mustID(t, lt, "c")
	want := []int32{2 * a, 2 * b, 2*b + 1, 2 * c, 2*c + 1, 2*a + 1}
	got := baseline.EulerString(tr)
	if len(got) != len(want) {
		t.Fatalf("euler length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("euler[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	rng := rand.New(rand.NewSource(419))
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, 40, lt)
		if e := baseline.EulerString(tr); len(e) != 2*tr.Size() {
			t.Fatalf("euler length %d, want %d", len(e), 2*tr.Size())
		}
	}
}

func mustID(t *testing.T, lt *tree.LabelTable, name string) int32 {
	t.Helper()
	id, ok := lt.Lookup(name)
	if !ok {
		t.Fatalf("label %q not interned", name)
	}
	return id
}

// TestEulerLowerBound: ⌈sed(Euler)/2⌉ ≤ TED on random pairs (Akutsu et
// al.'s theorem, the EUL filter's correctness).
func TestEulerLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	lt := tree.NewLabelTable()
	for i := 0; i < 400; i++ {
		a := randomTree(rng, 20, lt)
		b := randomTree(rng, 20, lt)
		d := ted.Distance(a, b)
		// A full-width band keeps the bound exact for the test.
		lb := baseline.EulerLowerBound(baseline.EulerString(a), baseline.EulerString(b), 2*(a.Size()+b.Size()))
		if lb > d {
			t.Fatalf("euler bound %d > TED %d\n%s\n%s",
				lb, d, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

// TestExtraBaselinesMatchOracle: HIST and EUL return exactly the brute-force
// result set on clustered collections across thresholds.
func TestExtraBaselinesMatchOracle(t *testing.T) {
	ts := synth.Synthetic(120, 17)
	for tau := 0; tau <= 3; tau++ {
		want, _ := baseline.BruteForce(ts, baseline.Options{Tau: tau})
		for _, m := range []struct {
			name string
			join func([]*tree.Tree, baseline.Options) ([]sim.Pair, *sim.Stats)
		}{
			{"HIST", baseline.HIST},
			{"EUL", baseline.EUL},
		} {
			got, stats := m.join(ts, baseline.Options{Tau: tau})
			if len(got) != len(want) {
				t.Fatalf("τ=%d: %s returned %d pairs, oracle %d", tau, m.name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("τ=%d: %s pair %d = %v, oracle %v", tau, m.name, i, got[i], want[i])
				}
			}
			if stats.Candidates < stats.Results {
				t.Fatalf("τ=%d: %s candidates below results", tau, m.name)
			}
		}
	}
}

// TestExtraBaselinesCandidateOrdering: HIST and EUL candidates stay within
// the size-filter count, and EUL prunes at least as well as the size filter.
func TestExtraBaselinesCandidateOrdering(t *testing.T) {
	ts := synth.Synthetic(120, 19)
	for _, tau := range []int{1, 2, 3} {
		_, bf := baseline.BruteForce(ts, baseline.Options{Tau: tau})
		_, hist := baseline.HIST(ts, baseline.Options{Tau: tau})
		_, eul := baseline.EUL(ts, baseline.Options{Tau: tau})
		if hist.Candidates > bf.Candidates {
			t.Errorf("τ=%d: HIST candidates %d above size-filter %d", tau, hist.Candidates, bf.Candidates)
		}
		if eul.Candidates > bf.Candidates {
			t.Errorf("τ=%d: EUL candidates %d above size-filter %d", tau, eul.Candidates, bf.Candidates)
		}
		if hist.Results != bf.Results || eul.Results != bf.Results {
			t.Errorf("τ=%d: result counts disagree", tau)
		}
	}
}
