// Package baseline implements the competitors the paper evaluates PartSJ
// against (§2, §4) plus the survey's other lower-bound filters:
//
//   - BruteForce: nested loop with only the size filter — the ground-truth
//     oracle and the source of the REL series in Figures 11/13.
//   - STR (Guha et al. [13]): prunes a pair when the string edit distance of
//     the trees' preorder or postorder label sequences — both TED lower
//     bounds — exceeds τ.
//   - SET (Yang et al. [27]): prunes a pair when the binary branch distance
//     exceeds 5τ, using BIB(T1,T2) ≤ 5·TED(T1,T2).
//   - HIST (Kailing et al. [16]): statistic-histogram lower bounds.
//   - EUL (Akutsu et al. [1]): the Euler-string edit distance bound.
//
// Every method is a thin constructor over the shared pipeline engine: the
// sorted nested loop enumerates size-compatible pairs, the method's filter —
// exposed as an engine.PairFilter in filters.go so any join can chain it as
// a prefilter — prunes them, and survivors go to the shared TED verifier.
package baseline

import (
	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Options configures a baseline join.
type Options struct {
	Tau      int
	Verifier sim.Verifier
	Workers  int
}

// job assembles the engine job shared by all baselines: the sorted nested
// loop feeding the given filter chain.
func (o Options) job(filters ...engine.PairFilter) engine.Job {
	return engine.Job{
		Source:   engine.SortedLoop(),
		Filters:  filters,
		Tau:      o.Tau,
		Verifier: o.Verifier,
		Workers:  o.Workers,
	}
}

// BruteForce joins ts with only the size filter: every pair within the τ size
// window is verified. It is the correctness oracle for all other methods and
// its result count is the paper's REL series.
func BruteForce(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return opts.job().SelfJoin(ts)
}

// STR joins ts using the traversal-string lower bounds of Guha et al.; see
// STRFilter.
func STR(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return opts.job(STRFilter()).SelfJoin(ts)
}

// SET joins ts using the binary branch filter of Yang et al.; see SETFilter.
func SET(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return opts.job(SETFilter()).SelfJoin(ts)
}

// HIST joins ts using the histogram lower bounds of Kailing et al.; see
// HISTFilter.
func HIST(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return opts.job(HISTFilter()).SelfJoin(ts)
}

// EUL joins ts using the Euler-string lower bound of Akutsu et al.; see
// EULFilter.
func EUL(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return opts.job(EULFilter()).SelfJoin(ts)
}
