// Package baseline implements the competitors the paper evaluates PartSJ
// against (§2, §4):
//
//   - BruteForce: nested loop with only the size filter — the ground-truth
//     oracle and the source of the REL series in Figures 11/13.
//   - STR (Guha et al. [13]): prunes a pair when the string edit distance of
//     the trees' preorder or postorder label sequences — both TED lower
//     bounds — exceeds τ.
//   - SET (Yang et al. [27]): prunes a pair when the binary branch distance
//     exceeds 5τ, using BIB(T1,T2) ≤ 5·TED(T1,T2).
//
// All three run the indexed-nested-loop shape the paper describes: trees
// sorted by size, each tree compared against the preceding trees within the
// τ size window, surviving pairs verified with the shared TED verifier.
package baseline

import (
	"time"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// filterFunc decides whether the pair (i, j) survives a method's filter and
// becomes a TED candidate.
type filterFunc func(i, j int) bool

// Options configures a baseline join.
type Options struct {
	Tau      int
	Verifier sim.Verifier
	Workers  int
}

// run executes the common sorted nested loop: every unordered pair within the
// size window is offered to filter; survivors are verified.
func run(ts []*tree.Tree, opts Options, prep func(stats *sim.Stats) filterFunc) ([]sim.Pair, *sim.Stats) {
	stats := &sim.Stats{Trees: len(ts)}
	start := time.Now()
	filter := prep(stats)
	order := sim.SizeOrder(ts)
	var cands []sim.Candidate
	lo := 0
	for pi, ti := range order {
		sz := ts[ti].Size()
		for lo < pi && ts[order[lo]].Size() < sz-opts.Tau {
			lo++
		}
		for k := lo; k < pi; k++ {
			tj := order[k]
			if filter == nil || filter(ti, tj) {
				cands = append(cands, sim.Candidate{I: ti, J: tj})
			}
		}
	}
	stats.CandTime += time.Since(start)
	results := sim.VerifyAll(ts, cands, opts.Tau, opts.Verifier, opts.Workers, stats)
	sim.SortPairs(results)
	stats.Results = int64(len(results))
	return results, stats
}

// BruteForce joins ts with only the size filter: every pair within the τ size
// window is verified. It is the correctness oracle for all other methods and
// its result count is the paper's REL series.
func BruteForce(ts []*tree.Tree, opts Options) ([]sim.Pair, *sim.Stats) {
	return run(ts, opts, func(*sim.Stats) filterFunc { return nil })
}
