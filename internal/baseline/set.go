package baseline

import (
	"sort"

	"treejoin/internal/lcrs"
	"treejoin/internal/tree"
)

// branch is one binary branch: a node of the LC-RS binary tree together with
// the labels of its two binary children (noChild for a missing child — the
// paper's ε dummy).
type branch struct{ node, left, right int32 }

const noChild int32 = -1

// branchLess orders branches lexicographically, for multiset intersection by
// merging.
func branchLess(a, b branch) bool {
	if a.node != b.node {
		return a.node < b.node
	}
	if a.left != b.left {
		return a.left < b.left
	}
	return a.right < b.right
}

// BranchVector returns the sorted multiset of binary branches of t. Its
// length equals the tree size: one branch per node.
func BranchVector(t *tree.Tree) []branch {
	b := lcrs.Build(t)
	out := make([]branch, 0, t.Size())
	for id := range t.Nodes {
		n := int32(id)
		br := branch{node: b.Label(n), left: noChild, right: noChild}
		if l := b.Left(n); l != lcrs.None {
			br.left = b.Label(l)
		}
		if r := b.Right(n); r != lcrs.None {
			br.right = b.Label(r)
		}
		out = append(out, br)
	}
	sort.Slice(out, func(i, j int) bool { return branchLess(out[i], out[j]) })
	return out
}

// BIB returns the binary branch distance |X1| + |X2| − 2|X1 ∩ X2| between two
// sorted branch multisets. Yang et al. prove BIB(T1,T2) ≤ 5·TED(T1,T2).
func BIB(x1, x2 []branch) int {
	common := 0
	i, j := 0, 0
	for i < len(x1) && j < len(x2) {
		switch {
		case x1[i] == x2[j]:
			common++
			i++
			j++
		case branchLess(x1[i], x2[j]):
			i++
		default:
			j++
		}
	}
	return len(x1) + len(x2) - 2*common
}

