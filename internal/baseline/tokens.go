package baseline

import (
	"treejoin/internal/engine"
	"treejoin/internal/tree"
)

// LabelTokenizer returns the label-histogram tokenisation as an
// engine.Tokenizer for the token inverted-index candidate source: one token
// per node, keyed by the node's interned label. The bag bound is the label
// histogram's L1 bound from the HIST baseline — a rename moves one unit of
// mass between two bins (L1 change 2), an insert or delete adds or removes
// one unit (L1 change 1) — so |bag(T1) ⊖ bag(T2)| = L1(labels) ≤ 2·TED and
// Slack() = 2. Bag size equals tree size, trivially size-monotone. This is
// the index tokenisation behind the HIST and SET methods, whose own pair
// filters have no bag form of their own (SET's branch distance is a 5·TED
// bound, but the label bound's C = 2 yields prefixes two and a half times
// shorter for the same soundness).
func LabelTokenizer() engine.Tokenizer {
	return engine.NewTokenizer("labels", 2, func(t *tree.Tree) []uint64 {
		out := make([]uint64, len(t.Nodes))
		for i := range t.Nodes {
			out[i] = uint64(uint32(t.Nodes[i].Label))
		}
		return out
	})
}
