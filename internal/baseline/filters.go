package baseline

import (
	"treejoin/internal/engine"
	"treejoin/internal/strdist"
	"treejoin/internal/tree"
)

// The baselines' lower bounds as composable engine stages. Each constructor
// packages one method's per-tree precomputation and pair predicate into an
// engine.PairFilter, so the same bound serves as a standalone join method
// (this package's STR/SET/HIST/EUL), as a prefilter chained in front of any
// other method (the public WithPrefilter option), or as one link of a
// cheap-to-expensive filter cascade. Every predicate is a sound TED lower
// bound test: it prunes a pair only when the bound proves TED > τ.
//
// The per-tree signatures (traversal strings, branch vectors, histogram
// profiles, Euler strings) do not depend on τ, so Prepare fetches them
// through the run's artifact cache: a corpus-backed join computes each tree's
// signature once, ever, and later joins at any threshold reuse it. Only the
// pair predicates, which capture τ, are rebuilt per run.

// travStrings is the per-tree STR signature: both traversal label sequences.
type travStrings struct {
	pre, post []int32
}

// STRFilter returns the traversal-string stage (Guha et al.): the unit-cost
// string edit distance between the preorder (resp. postorder) label
// sequences of two trees never exceeds their TED, so a pair whose preorder
// or postorder sequences differ by more than τ cannot be a result. Sequence
// distances are computed with the τ-banded algorithm, matching the original
// method's cost profile: candidate generation is a string join over all
// size-compatible pairs and dominates at small τ (cf. Figure 10).
func STRFilter() engine.PairFilter {
	return engine.NewFilter("STR", func(c *engine.Collection) func(i, j int) bool {
		seqs := engine.Cached(c.Cache(), "str/traversals", c.Trees, func(t *tree.Tree) travStrings {
			return travStrings{
				pre:  tree.LabelSeq(t, tree.Preorder(t)),
				post: tree.LabelSeq(t, tree.Postorder(t)),
			}
		})
		tau := c.Tau
		return func(i, j int) bool {
			if strdist.Bounded(seqs[i].pre, seqs[j].pre, tau) > tau {
				return false
			}
			return strdist.Bounded(seqs[i].post, seqs[j].post, tau) <= tau
		}
	})
}

// SETFilter returns the binary branch stage (Yang et al.): a pair is pruned
// when its binary branch distance exceeds 5τ. The branch structure is
// insensitive to τ, so — exactly as the paper observes — the test is cheap
// but the candidate set grows quickly with τ.
func SETFilter() engine.PairFilter {
	return engine.NewFilter("SET", func(c *engine.Collection) func(i, j int) bool {
		vecs := engine.Cached(c.Cache(), "set/branches", c.Trees, BranchVector)
		limit := 5 * c.Tau
		return func(i, j int) bool {
			return BIB(vecs[i], vecs[j]) <= limit
		}
	})
}

// HISTFilter returns the statistics-histogram stage (Kailing et al.): a pair
// is pruned when any of the five statistic lower bounds (size, leaves,
// height, label histogram, degree histogram — see hist.go for the proofs)
// exceeds τ. Profile extraction is linear and each pair test touches only
// the sparse histograms, making this the cheapest filter per pair and the
// natural first link of a prefilter chain.
func HISTFilter() engine.PairFilter {
	return engine.NewFilter("HIST", func(c *engine.Collection) func(i, j int) bool {
		profiles := engine.Cached(c.Cache(), "hist/profiles", c.Trees, NewHistProfile)
		tau := c.Tau
		return func(i, j int) bool {
			return HistLowerBound(profiles[i], profiles[j]) <= tau
		}
	})
}

// EULFilter returns the Euler-string stage (Akutsu et al.): a pair is pruned
// when the 2τ-banded string edit distance of the Euler strings exceeds 2τ.
// Like STR the test is a banded string comparison — at twice the string
// length and band width, so it costs roughly 4× STR's while pruning slightly
// more shape changes (the close symbols encode where subtrees end).
func EULFilter() engine.PairFilter {
	return engine.NewFilter("EUL", func(c *engine.Collection) func(i, j int) bool {
		eulers := engine.Cached(c.Cache(), "eul/strings", c.Trees, EulerString)
		tau := c.Tau
		return func(i, j int) bool {
			return EulerLowerBound(eulers[i], eulers[j], tau) <= tau
		}
	})
}
