package baseline_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/baseline"
	"treejoin/internal/strdist"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// TestFigure3Bounds reproduces §2's worked example: for the Figure 3 pair,
// TED = 3, the preorder string distance is 0 and the postorder string
// distance is 2 (both as printed). For the binary branch distance the paper
// prints BIB = 6, but the bags it draws share two branches, (l1: l2, ε) and
// (l3: ε, ε), giving |X1 ∩ X2| = 2 and hence BIB = 4 + 4 − 2·2 = 4 — the
// printed 6 is an arithmetic slip (either value satisfies BIB ≤ 5·TED = 15).
func TestFigure3Bounds(t *testing.T) {
	lt := tree.NewLabelTable()
	t1 := tree.MustParseBracket("{l1{l2}{l1{l3}}}", lt)
	t2 := tree.MustParseBracket("{l1{l2{l1}{l3}}}", lt)
	if d := ted.Distance(t1, t2); d != 3 {
		t.Fatalf("TED = %d", d)
	}
	pre1 := tree.LabelSeq(t1, tree.Preorder(t1))
	pre2 := tree.LabelSeq(t2, tree.Preorder(t2))
	if d := strdist.Levenshtein(pre1, pre2); d != 0 {
		t.Errorf("preorder SED = %d, want 0", d)
	}
	post1 := tree.LabelSeq(t1, tree.Postorder(t1))
	post2 := tree.LabelSeq(t2, tree.Postorder(t2))
	if d := strdist.Levenshtein(post1, post2); d != 2 {
		t.Errorf("postorder SED = %d, want 2", d)
	}
	x1 := baseline.BranchVector(t1)
	x2 := baseline.BranchVector(t2)
	if d := baseline.BIB(x1, x2); d != 4 {
		t.Errorf("BIB = %d, want 4", d)
	}
}

// TestStringDistanceIsLowerBound: SED(pre), SED(post) ≤ TED on random pairs
// (Guha et al.'s theorem, the STR filter's correctness).
func TestStringDistanceIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	lt := tree.NewLabelTable()
	for i := 0; i < 300; i++ {
		a := randomTree(rng, 18, lt)
		b := randomTree(rng, 18, lt)
		d := ted.Distance(a, b)
		pre := strdist.Levenshtein(tree.LabelSeq(a, tree.Preorder(a)), tree.LabelSeq(b, tree.Preorder(b)))
		post := strdist.Levenshtein(tree.LabelSeq(a, tree.Postorder(a)), tree.LabelSeq(b, tree.Postorder(b)))
		if pre > d || post > d {
			t.Fatalf("string bound above TED: pre=%d post=%d ted=%d\n%s\n%s",
				pre, post, d, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

// TestBIBBound: BIB(T1,T2) ≤ 5·TED(T1,T2) on random pairs (Yang et al.'s
// theorem, the SET filter's correctness).
func TestBIBBound(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	lt := tree.NewLabelTable()
	for i := 0; i < 300; i++ {
		a := randomTree(rng, 18, lt)
		b := randomTree(rng, 18, lt)
		d := ted.Distance(a, b)
		bib := baseline.BIB(baseline.BranchVector(a), baseline.BranchVector(b))
		if bib > 5*d {
			t.Fatalf("BIB %d > 5·TED %d\n%s\n%s", bib, 5*d, tree.FormatBracket(a), tree.FormatBracket(b))
		}
	}
}

func TestBranchVectorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		a := randomTree(rng, 30, lt)
		x := baseline.BranchVector(a)
		if len(x) != a.Size() {
			t.Fatalf("branch vector length %d != size %d", len(x), a.Size())
		}
		if d := baseline.BIB(x, x); d != 0 {
			t.Fatalf("BIB(x,x) = %d", d)
		}
		b := randomTree(rng, 30, lt)
		y := baseline.BranchVector(b)
		if baseline.BIB(x, y) != baseline.BIB(y, x) {
			t.Fatal("BIB asymmetric")
		}
	}
}

func TestBruteForceMatchesNaive(t *testing.T) {
	ts := synth.Generate(synth.Params{
		N: 30, AvgSize: 15, SizeJitter: 0.4, MaxFanout: 4, MaxDepth: 6,
		Labels: 6, DepthBias: 0, Cluster: 3, Decay: 0.08, Seed: 5})
	for tau := 0; tau <= 3; tau++ {
		got, stats := baseline.BruteForce(ts, baseline.Options{Tau: tau})
		// Naive double loop without any ordering.
		var want int
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if ted.Distance(ts[i], ts[j]) <= tau {
					want++
				}
			}
		}
		if len(got) != want {
			t.Fatalf("τ=%d: %d pairs, naive %d", tau, len(got), want)
		}
		for _, p := range got {
			if p.I >= p.J {
				t.Fatalf("unnormalised pair %v", p)
			}
			if p.Dist > tau {
				t.Fatalf("overszied distance %v", p)
			}
		}
		if stats.Results != int64(len(got)) {
			t.Fatalf("stats results %d != %d", stats.Results, len(got))
		}
	}
}

// TestBaselinesParallelWorkers: worker pools do not change baseline results.
func TestBaselinesParallelWorkers(t *testing.T) {
	ts := synth.Synthetic(60, 9)
	for _, tau := range []int{1, 3} {
		s1, _ := baseline.STR(ts, baseline.Options{Tau: tau})
		s2, _ := baseline.STR(ts, baseline.Options{Tau: tau, Workers: 4})
		if len(s1) != len(s2) {
			t.Fatalf("STR workers changed results")
		}
		e1, _ := baseline.SET(ts, baseline.Options{Tau: tau})
		e2, _ := baseline.SET(ts, baseline.Options{Tau: tau, Workers: 4})
		if len(e1) != len(e2) {
			t.Fatalf("SET workers changed results")
		}
	}
}

// TestFilterSelectivityOrdering: on clustered synthetic data the candidate
// counts follow the paper's Figure 11 ordering: REL ≤ STR/PRT ≤ SET ≤ size
// filter only.
func TestFilterSelectivityOrdering(t *testing.T) {
	ts := synth.Synthetic(150, 13)
	for _, tau := range []int{1, 2, 3} {
		_, bf := baseline.BruteForce(ts, baseline.Options{Tau: tau})
		_, str := baseline.STR(ts, baseline.Options{Tau: tau})
		_, set := baseline.SET(ts, baseline.Options{Tau: tau})
		if str.Candidates > bf.Candidates {
			t.Errorf("τ=%d: STR candidates %d above size-filter count %d", tau, str.Candidates, bf.Candidates)
		}
		if set.Candidates > bf.Candidates {
			t.Errorf("τ=%d: SET candidates %d above size-filter count %d", tau, set.Candidates, bf.Candidates)
		}
		if str.Results != set.Results || str.Results != bf.Results {
			t.Errorf("τ=%d: result counts disagree", tau)
		}
		if str.Candidates < str.Results || set.Candidates < set.Results {
			t.Errorf("τ=%d: candidates below results", tau)
		}
	}
}

func randomTree(rng *rand.Rand, maxN int, lt *tree.LabelTable) *tree.Tree {
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(lt)
	b.Root(string(rune('a' + rng.Intn(4))))
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(4))))
	}
	return b.MustBuild()
}
