package dataset_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"treejoin/internal/dataset"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

func roundTrip(t *testing.T, lt *tree.LabelTable, ts []*tree.Tree) (*tree.LabelTable, []*tree.Tree) {
	t.Helper()
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt, ts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	lt2, ts2, err := dataset.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return lt2, ts2
}

func TestRoundTripHandCase(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c{d}{e}}}", lt),
		tree.MustParseBracket("{x}", lt),
		tree.MustParseBracket("{a{a{a{a}}}}", lt),
	}
	lt2, ts2 := roundTrip(t, lt, ts)
	if lt2.Len() != lt.Len() {
		t.Fatalf("labels: %d != %d", lt2.Len(), lt.Len())
	}
	if len(ts2) != len(ts) {
		t.Fatalf("trees: %d != %d", len(ts2), len(ts))
	}
	for i := range ts {
		if !tree.Equal(ts[i], ts2[i]) {
			t.Fatalf("tree %d changed: %s -> %s", i,
				tree.FormatBracket(ts[i]), tree.FormatBracket(ts2[i]))
		}
		if err := ts2[i].Validate(); err != nil {
			t.Fatalf("tree %d invalid after decode: %v", i, err)
		}
	}
}

func TestRoundTripEmptyCollection(t *testing.T) {
	lt := tree.NewLabelTable()
	lt.Intern("orphan label")
	lt2, ts2 := roundTrip(t, lt, nil)
	if lt2.Len() != 1 || len(ts2) != 0 {
		t.Fatalf("labels=%d trees=%d", lt2.Len(), len(ts2))
	}
	if lt2.Name(0) != "orphan label" {
		t.Fatalf("label %q", lt2.Name(0))
	}
}

// TestRoundTripRandom: generated collections round-trip node for node,
// including exotic labels.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	labels := []string{"", "a", "日本語", "with space", string([]byte{0, 1, 255})}
	for trial := 0; trial < 30; trial++ {
		lt := tree.NewLabelTable()
		var ts []*tree.Tree
		for i := 0; i < 20; i++ {
			n := 1 + rng.Intn(40)
			b := tree.NewBuilder(lt)
			b.Root(labels[rng.Intn(len(labels))])
			for j := 1; j < n; j++ {
				b.Child(int32(rng.Intn(j)), labels[rng.Intn(len(labels))])
			}
			ts = append(ts, b.MustBuild())
		}
		_, ts2 := roundTrip(t, lt, ts)
		for i := range ts {
			if !tree.Equal(ts[i], ts2[i]) {
				t.Fatalf("trial %d tree %d changed", trial, i)
			}
		}
	}
}

func TestRoundTripSynthProfile(t *testing.T) {
	ts := synth.Synthetic(100, 7)
	if len(ts) == 0 {
		t.Fatal("no trees")
	}
	lt := ts[0].Labels
	_, ts2 := roundTrip(t, lt, ts)
	for i := range ts {
		if !tree.Equal(ts[i], ts2[i]) {
			t.Fatalf("tree %d changed", i)
		}
	}
}

func TestWriteRejectsForeignTable(t *testing.T) {
	lt1 := tree.NewLabelTable()
	lt2 := tree.NewLabelTable()
	a := tree.MustParseBracket("{a}", lt1)
	b := tree.MustParseBracket("{a}", lt2)
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt1, []*tree.Tree{a, b}); err == nil {
		t.Fatal("expected error for foreign label table")
	}
}

// TestCorruptionDetected: every single-byte flip in the payload either
// fails to decode or fails the checksum — never yields silently wrong data.
func TestCorruptionDetected(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c{d}}}", lt),
		tree.MustParseBracket("{b{a}}", lt),
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt, ts); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for pos := 0; pos < len(orig); pos++ {
		mut := make([]byte, len(orig))
		copy(mut, orig)
		mut[pos] ^= 0x41
		lt2, ts2, err := dataset.Read(bytes.NewReader(mut))
		if err != nil {
			continue // detected — good
		}
		// An undetected flip must still decode to the identical collection
		// (CRC32 cannot collide on a single-byte flip, so reaching here
		// means the flip was in a byte the decoder never consumed — which
		// this format does not have).
		_ = lt2
		same := len(ts2) == len(ts)
		for i := 0; same && i < len(ts); i++ {
			same = tree.Equal(ts[i], ts2[i])
		}
		t.Fatalf("flip at byte %d of %d went undetected (equal=%v)", pos, len(orig), same)
	}
}

func TestTruncationDetected(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{tree.MustParseBracket("{a{b}{c}}", lt)}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt, ts); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for cut := 0; cut < len(orig); cut++ {
		if _, _, err := dataset.Read(bytes.NewReader(orig[:cut])); err == nil {
			t.Fatalf("truncation at %d went undetected", cut)
		} else if !errors.Is(err, dataset.ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage is also rejected.
	if _, _, err := dataset.Read(bytes.NewReader(append(append([]byte{}, orig...), 0))); err == nil {
		t.Fatal("trailing byte went undetected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, _, err := dataset.Read(bytes.NewReader([]byte("NOPE0123456789"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	lt := tree.NewLabelTable()
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version
	if _, _, err := dataset.Read(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.tjds")
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{tree.MustParseBracket("{a{b}}", lt)}
	if err := dataset.WriteFile(path, lt, ts); err != nil {
		t.Fatal(err)
	}
	_, ts2, err := dataset.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts2) != 1 || !tree.Equal(ts[0], ts2[0]) {
		t.Fatal("file round trip changed tree")
	}
	if _, _, err := dataset.ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dataset.ReadFile(path); err == nil {
		t.Fatal("garbage file accepted")
	}
}

// TestCompactness: the binary form of a synthetic collection is smaller
// than its bracket text (the format's reason to exist).
func TestCompactness(t *testing.T) {
	ts := synth.Synthetic(200, 11)
	lt := ts[0].Labels
	var bin bytes.Buffer
	if err := dataset.Write(&bin, lt, ts); err != nil {
		t.Fatal(err)
	}
	var text int
	for _, tr := range ts {
		text += len(tree.FormatBracket(tr)) + 1
	}
	if bin.Len() >= text {
		t.Fatalf("binary %d bytes not smaller than text %d", bin.Len(), text)
	}
}
