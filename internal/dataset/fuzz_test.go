package dataset_test

import (
	"bytes"
	"testing"

	"treejoin/internal/dataset"
	"treejoin/internal/tree"
)

// FuzzRead: arbitrary bytes must never panic or over-allocate; any input the
// decoder accepts must re-encode to an equivalent collection (decode/encode
// idempotence).
func FuzzRead(f *testing.F) {
	// Seed with a couple of valid encodings and near-misses.
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c{d}}}", lt),
		tree.MustParseBracket("{b}", lt),
	}
	var buf bytes.Buffer
	if err := dataset.Write(&buf, lt, ts); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("TJDS"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		lt2, ts2, err := dataset.Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, tr := range ts2 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("decoded invalid tree %d: %v", i, err)
			}
		}
		var out bytes.Buffer
		if err := dataset.Write(&out, lt2, ts2); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		lt3, ts3, err := dataset.Read(&out)
		if err != nil {
			t.Fatalf("re-encoded form does not decode: %v", err)
		}
		if lt3.Len() != lt2.Len() || len(ts3) != len(ts2) {
			t.Fatal("decode/encode changed collection shape")
		}
		for i := range ts2 {
			if !tree.Equal(ts2[i], ts3[i]) {
				t.Fatalf("decode/encode changed tree %d", i)
			}
		}
	})
}
