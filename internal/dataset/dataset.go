// Package dataset implements a compact binary on-disk format for tree
// collections. Large collections (the paper joins up to 100K trees) are slow
// to re-parse from text on every run; the binary format stores the interned
// label table once and each tree as its preorder label/child-count
// sequence, loads with a single pass and no string re-interning, and is
// integrity-checked by a trailing CRC.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "TJDS" (4 bytes)
//	version byte (currently 1)
//	labelCount, then per label: byteLen, bytes
//	treeCount, then per tree: nodeCount, then per node in preorder:
//	    labelID, childCount
//	crc32   IEEE checksum of everything after the magic (4 bytes LE)
//
// The preorder (label, childCount) stream reconstructs each tree with one
// stack pass; child order is preserved exactly.
package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"os"

	"treejoin/internal/tree"
)

var magic = [4]byte{'T', 'J', 'D', 'S'}

const version = 1

// Sanity caps: a corrupt or hostile header must not drive allocations. The
// caps are far above anything the module generates.
const (
	maxLabels    = 1 << 26 // 64M distinct labels
	maxLabelLen  = 1 << 20 // 1 MiB per label
	maxTrees     = 1 << 28
	maxTreeNodes = 1 << 28
)

// ErrCorrupt reports a malformed or truncated dataset; errors.Is against it
// matches every decode failure produced by this package.
var ErrCorrupt = errors.New("dataset: corrupt input")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Write encodes lt and ts to w. Every tree must use lt as its label table.
func Write(w io.Writer, lt *tree.LabelTable, ts []*tree.Tree) error {
	for i, t := range ts {
		if t.Labels != lt {
			return fmt.Errorf("dataset: tree %d does not use the given label table", i)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := out.Write(buf[:n])
		return err
	}
	if _, err := out.Write([]byte{version}); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := writeUvarint(uint64(lt.Len())); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for id := 0; id < lt.Len(); id++ {
		name := lt.Name(int32(id))
		if err := writeUvarint(uint64(len(name))); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		if _, err := io.WriteString(out, name); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
	}
	if err := writeUvarint(uint64(len(ts))); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	for _, t := range ts {
		if err := writeUvarint(uint64(t.Size())); err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		for _, n := range tree.Preorder(t) {
			if err := writeUvarint(uint64(t.Nodes[n].Label)); err != nil {
				return fmt.Errorf("dataset: %w", err)
			}
			var fan uint64
			for c := t.Nodes[n].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
				fan++
			}
			if err := writeUvarint(fan); err != nil {
				return fmt.Errorf("dataset: %w", err)
			}
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// crcReader feeds everything read through a CRC.
type crcReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc.Write([]byte{b})
	}
	return b, err
}

func (cr *crcReader) read(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		return err
	}
	cr.crc.Write(p)
	return nil
}

func (cr *crcReader) uvarint(cap uint64, what string) (uint64, error) {
	v, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, corruptf("reading %s: %v", what, err)
	}
	if v > cap {
		return 0, corruptf("%s %d exceeds limit %d", what, v, cap)
	}
	return v, nil
}

// Read decodes a dataset from r, returning the label table and the trees.
func Read(r io.Reader) (*tree.LabelTable, []*tree.Tree, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, corruptf("reading magic: %v", err)
	}
	if m != magic {
		return nil, nil, corruptf("bad magic %q", m[:])
	}
	cr := &crcReader{r: br, crc: crc32.NewIEEE()}
	ver, err := cr.ReadByte()
	if err != nil {
		return nil, nil, corruptf("reading version: %v", err)
	}
	if ver != version {
		return nil, nil, corruptf("unsupported version %d", ver)
	}
	nLabels, err := cr.uvarint(maxLabels, "label count")
	if err != nil {
		return nil, nil, err
	}
	lt := tree.NewLabelTable()
	nameBuf := make([]byte, 0, 64)
	for i := uint64(0); i < nLabels; i++ {
		ln, err := cr.uvarint(maxLabelLen, "label length")
		if err != nil {
			return nil, nil, err
		}
		if uint64(cap(nameBuf)) < ln {
			nameBuf = make([]byte, ln)
		}
		nameBuf = nameBuf[:ln]
		if err := cr.read(nameBuf); err != nil {
			return nil, nil, corruptf("reading label %d: %v", i, err)
		}
		if id := lt.Intern(string(nameBuf)); id != int32(i) {
			return nil, nil, corruptf("duplicate label %q", nameBuf)
		}
	}
	nTrees, err := cr.uvarint(maxTrees, "tree count")
	if err != nil {
		return nil, nil, err
	}
	ts := make([]*tree.Tree, 0, min64(nTrees, 1<<16))
	for ti := uint64(0); ti < nTrees; ti++ {
		n, err := cr.uvarint(maxTreeNodes, "tree size")
		if err != nil {
			return nil, nil, err
		}
		if n == 0 {
			return nil, nil, corruptf("tree %d is empty", ti)
		}
		t, err := readTree(cr, lt, int(n), ti)
		if err != nil {
			return nil, nil, err
		}
		ts = append(ts, t)
	}
	got := cr.crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, nil, corruptf("reading checksum: %v", err)
	}
	if want := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, nil, corruptf("checksum mismatch: %08x != %08x", got, want)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, corruptf("trailing bytes after checksum")
	}
	return lt, ts, nil
}

// readTree reconstructs one tree from its preorder (label, childCount)
// stream. pending[k] counts the children still owed to the node on stack
// level k.
func readTree(cr *crcReader, lt *tree.LabelTable, n int, ti uint64) (*tree.Tree, error) {
	b := tree.NewBuilder(lt)
	type frame struct {
		id      int32
		pending uint64
	}
	var stack []frame
	for i := 0; i < n; i++ {
		label, err := cr.uvarint(uint64(lt.Len()), "label id")
		if err != nil {
			return nil, err
		}
		if label >= uint64(lt.Len()) {
			return nil, corruptf("tree %d node %d: label id %d out of range", ti, i, label)
		}
		fan, err := cr.uvarint(uint64(n), "child count")
		if err != nil {
			return nil, err
		}
		var id int32
		if len(stack) == 0 {
			if i != 0 {
				return nil, corruptf("tree %d: node %d after the root completed", ti, i)
			}
			id = b.RootID(int32(label))
		} else {
			top := &stack[len(stack)-1]
			id = b.ChildID(top.id, int32(label))
			top.pending--
		}
		if fan > 0 {
			stack = append(stack, frame{id: id, pending: fan})
		}
		for len(stack) > 0 && stack[len(stack)-1].pending == 0 {
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		return nil, corruptf("tree %d: %d nodes missing", ti, len(stack))
	}
	t, err := b.Build()
	if err != nil {
		return nil, corruptf("tree %d: %v", ti, err)
	}
	return t, nil
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}

// WriteFile writes the dataset to path.
func WriteFile(path string, lt *tree.LabelTable, ts []*tree.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := Write(f, lt, ts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	return nil
}

// ReadFile reads a dataset from path.
func ReadFile(path string) (*tree.LabelTable, []*tree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return Read(f)
}
