package bench_test

import (
	"bytes"
	"strings"
	"testing"

	"treejoin/internal/bench"
	"treejoin/internal/synth"
)

func tinyConfig() bench.Config {
	return bench.Config{Scale: 0.002, Seed: 1} // 200/100/20/20 trees
}

func TestRunMethodsAgreeOnResults(t *testing.T) {
	ts := synth.Synthetic(60, 2)
	for tau := 1; tau <= 3; tau++ {
		var results []int64
		for _, m := range []bench.Method{bench.STR, bench.SET, bench.PRT, bench.PRTRandom, bench.PRTNoPos, bench.BF} {
			r := bench.Run(m, "t", ts, tau, 0)
			results = append(results, r.Results)
			if r.Candidates < r.Results {
				t.Fatalf("%s τ=%d: candidates %d < results %d", m, tau, r.Candidates, r.Results)
			}
			if r.Trees != len(ts) {
				t.Fatalf("tree count wrong")
			}
		}
		for _, n := range results[1:] {
			if n != results[0] {
				t.Fatalf("τ=%d: result counts diverge: %v", tau, results)
			}
		}
	}
}

func TestFigure10And11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt, ct := bench.Figure10And11(tinyConfig())
	if len(rt) != 4 || len(ct) != 4 {
		t.Fatalf("tables: %d runtime, %d candidates", len(rt), len(ct))
	}
	for _, tab := range rt {
		if len(tab.Rows) != 5*3 { // τ 1..5 × 3 methods
			t.Fatalf("%s: %d rows", tab.Title, len(tab.Rows))
		}
	}
	for _, tab := range ct {
		if len(tab.Rows) != 5 {
			t.Fatalf("%s: %d rows", tab.Title, len(tab.Rows))
		}
	}
}

func TestFigure12And13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt, ct := bench.Figure12And13(tinyConfig())
	if len(rt) != 4 || len(ct) != 4 {
		t.Fatalf("tables: %d runtime, %d candidates", len(rt), len(ct))
	}
	for _, tab := range rt {
		if len(tab.Rows) != 5*3 { // 5 cardinality steps × 3 methods
			t.Fatalf("%s: %d rows", tab.Title, len(tab.Rows))
		}
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rt, ct := bench.Figure14(bench.Config{Scale: 0.001, Seed: 1})
	if len(rt) != 4 || len(ct) != 4 { // one table pair per swept parameter
		t.Fatalf("tables: %d runtime, %d candidates", len(rt), len(ct))
	}
	for _, tab := range rt {
		if len(tab.Rows) != 5*3 { // 5 parameter values × 3 methods
			t.Fatalf("%s: %d rows", tab.Title, len(tab.Rows))
		}
	}
}

func TestAblationVerificationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := bench.AblationVerification(tinyConfig())
	if len(tab.Rows) != 10 {
		t.Fatalf("verification ablation rows = %d", len(tab.Rows))
	}
}

func TestAblationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab := bench.AblationPartitioning(tinyConfig())
	if len(tab.Rows) != 10 {
		t.Fatalf("partitioning ablation rows = %d", len(tab.Rows))
	}
	tab = bench.AblationPosition(tinyConfig())
	if len(tab.Rows) != 15 {
		t.Fatalf("position ablation rows = %d", len(tab.Rows))
	}
}

func TestTableRender(t *testing.T) {
	tab := &bench.Table{Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") {
		t.Fatalf("render = %q", out)
	}
	var md bytes.Buffer
	tab.RenderMarkdown(&md)
	if !strings.Contains(md.String(), "| a | bb |") {
		t.Fatalf("markdown = %q", md.String())
	}
}

func TestDatasetsScale(t *testing.T) {
	ds := bench.Datasets(bench.Config{Scale: 0.001, Seed: 1})
	if len(ds) != 4 {
		t.Fatalf("%d datasets", len(ds))
	}
	if len(ds[0].Trees) != 100 { // 100K × 0.001
		t.Fatalf("swissprot scaled to %d", len(ds[0].Trees))
	}
	if len(ds[2].Trees) != 20 { // 10K × 0.001 → clamped to 20
		t.Fatalf("sentiment scaled to %d", len(ds[2].Trees))
	}
}
