package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment: a title, a header row, and data rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	total := len(t.Columns) - 1 + 2*(len(t.Columns)-1)
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}

// dur formats a duration compactly for table cells.
func dur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func count(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
