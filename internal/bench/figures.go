package bench

import (
	"fmt"

	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// compareMethods are the three methods of the paper's main comparison.
var compareMethods = []Method{STR, SET, PRT}

// Figure10And11 reproduces "Runtime on all the datasets w.r.t. TED threshold
// τ" (Figure 10) and "Number of candidates generated ... w.r.t. τ"
// (Figure 11): for each dataset and τ ∈ 1..5 it measures STR, SET and PRT,
// returning one runtime table and one candidate table per dataset. REL (the
// true result count) is read off the runs, since all methods verify to the
// same result set.
func Figure10And11(c Config) (runtime, candidates []*Table) {
	for _, ds := range Datasets(c) {
		rt := &Table{
			Title:   fmt.Sprintf("Figure 10 (%s, %d trees): runtime vs τ", ds.Name, len(ds.Trees)),
			Columns: []string{"tau", "method", "candgen", "verify", "total"},
		}
		ct := &Table{
			Title:   fmt.Sprintf("Figure 11 (%s, %d trees): candidates vs τ", ds.Name, len(ds.Trees)),
			Columns: []string{"tau", "STR", "SET", "PRT", "REL"},
		}
		for tau := 1; tau <= 5; tau++ {
			byMethod := map[Method]Result{}
			for _, m := range compareMethods {
				r := Run(m, ds.Name, ds.Trees, tau, c.Workers)
				byMethod[m] = r
				rt.AddRow(fmt.Sprintf("%d", tau), string(m), dur(r.CandGen), dur(r.Verify), dur(r.Total()))
				c.report("fig10/11 %s τ=%d %s: total=%v cand=%d", ds.Name, tau, m, r.Total(), r.Candidates)
			}
			ct.AddRow(fmt.Sprintf("%d", tau),
				count(byMethod[STR].Candidates), count(byMethod[SET].Candidates),
				count(byMethod[PRT].Candidates), count(byMethod[PRT].Results))
		}
		runtime = append(runtime, rt)
		candidates = append(candidates, ct)
	}
	return runtime, candidates
}

// Figure12And13 reproduces the scalability experiments: runtime (Figure 12)
// and candidates (Figure 13) versus dataset cardinality at τ = 3. The paper
// uses five cardinality steps per dataset (20–100%); so does this.
func Figure12And13(c Config) (runtime, candidates []*Table) {
	const tau = 3
	for _, ds := range Datasets(c) {
		rt := &Table{
			Title:   fmt.Sprintf("Figure 12 (%s): runtime vs cardinality, τ=%d", ds.Name, tau),
			Columns: []string{"trees", "method", "candgen", "verify", "total"},
		}
		ct := &Table{
			Title:   fmt.Sprintf("Figure 13 (%s): candidates vs cardinality, τ=%d", ds.Name, tau),
			Columns: []string{"trees", "STR", "SET", "PRT", "REL"},
		}
		for step := 1; step <= 5; step++ {
			n := len(ds.Trees) * step / 5
			sub := ds.Trees[:n]
			byMethod := map[Method]Result{}
			for _, m := range compareMethods {
				r := Run(m, ds.Name, sub, tau, c.Workers)
				byMethod[m] = r
				rt.AddRow(fmt.Sprintf("%d", n), string(m), dur(r.CandGen), dur(r.Verify), dur(r.Total()))
				c.report("fig12/13 %s n=%d %s: total=%v", ds.Name, n, m, r.Total())
			}
			ct.AddRow(fmt.Sprintf("%d", n),
				count(byMethod[STR].Candidates), count(byMethod[SET].Candidates),
				count(byMethod[PRT].Candidates), count(byMethod[PRT].Results))
		}
		runtime = append(runtime, rt)
		candidates = append(candidates, ct)
	}
	return runtime, candidates
}

// Table 1 of the paper: the synthetic-data parameter grid (defaults bold).
var (
	fanouts = []int{2, 3, 4, 5, 6}
	depths  = []int{4, 5, 6, 7, 8}
	labels  = []int{3, 5, 10, 20, 50}
	sizes   = []int{40, 80, 120, 160, 200}
)

const (
	defFanout = 3
	defDepth  = 5
	defLabels = 20
	defSize   = 80
)

// Figure14 reproduces the sensitivity analysis: synthetic collections where
// one of maximum fanout f, maximum depth d, label count l, average tree size
// t varies while the others stay at their defaults; τ = 3, 10K trees (scaled
// by Config.Scale). Panels (a,b) vary f, (c,d) vary d, (e,f) vary l, (g,h)
// vary t; each parameter yields one runtime and one candidate table.
func Figure14(c Config) (runtime, candidates []*Table) {
	const tau = 3
	n := c.n(10000)
	type sweep struct {
		param  string
		values []int
		gen    func(v int) []*tree.Tree
	}
	sweeps := []sweep{
		{"fanout f", fanouts, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, v, defDepth, defLabels, defSize, c.Seed))
		}},
		{"depth d", depths, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, defFanout, v, defLabels, defSize, c.Seed))
		}},
		{"labels l", labels, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, defFanout, defDepth, v, defSize, c.Seed))
		}},
		{"tree size t", sizes, func(v int) []*tree.Tree {
			return synth.Generate(synth.SyntheticParams(n, defFanout, defDepth, defLabels, v, c.Seed))
		}},
	}
	for _, sw := range sweeps {
		rt := &Table{
			Title:   fmt.Sprintf("Figure 14 (%s, %d trees): runtime, τ=%d", sw.param, n, tau),
			Columns: []string{sw.param, "method", "candgen", "verify", "total"},
		}
		ct := &Table{
			Title:   fmt.Sprintf("Figure 14 (%s, %d trees): candidates, τ=%d", sw.param, n, tau),
			Columns: []string{sw.param, "STR", "SET", "PRT", "REL"},
		}
		for _, v := range sw.values {
			ts := sw.gen(v)
			byMethod := map[Method]Result{}
			for _, m := range compareMethods {
				r := Run(m, sw.param, ts, tau, c.Workers)
				byMethod[m] = r
				rt.AddRow(fmt.Sprintf("%d", v), string(m), dur(r.CandGen), dur(r.Verify), dur(r.Total()))
				c.report("fig14 %s=%d %s: total=%v", sw.param, v, m, r.Total())
			}
			ct.AddRow(fmt.Sprintf("%d", v),
				count(byMethod[STR].Candidates), count(byMethod[SET].Candidates),
				count(byMethod[PRT].Candidates), count(byMethod[PRT].Results))
		}
		runtime = append(runtime, rt)
		candidates = append(candidates, ct)
	}
	return runtime, candidates
}

// AblationPartitioning reproduces the experiment the paper describes but
// omits for space (§4.3, final paragraph): the balanced MaxMinSize
// partitioning versus random tree partitioning, reported as a 50–300%
// overall improvement. Runs on the synthetic dataset across τ.
func AblationPartitioning(c Config) *Table {
	ts := synth.Synthetic(c.n(10000), c.Seed)
	t := &Table{
		Title:   fmt.Sprintf("Ablation (§4.3): balanced vs random partitioning (%d trees)", len(ts)),
		Columns: []string{"tau", "method", "candidates", "total", "vs PRT"},
	}
	for tau := 1; tau <= 5; tau++ {
		base := Run(PRT, "Synthetic", ts, tau, c.Workers)
		rnd := Run(PRTRandom, "Synthetic", ts, tau, c.Workers)
		t.AddRow(fmt.Sprintf("%d", tau), string(PRT), count(base.Candidates), dur(base.Total()), "1.00x")
		ratio := float64(rnd.Total()) / float64(base.Total())
		t.AddRow(fmt.Sprintf("%d", tau), string(PRTRandom), count(rnd.Candidates), dur(rnd.Total()),
			fmt.Sprintf("%.2fx", ratio))
		c.report("ablation-part τ=%d: balanced=%v random=%v (%.2fx)", tau, base.Total(), rnd.Total(), ratio)
	}
	return t
}

// AblationVerification measures the hybrid verifier extension: PartSJ with
// plain bounded-TED verification versus verification screened by the
// τ-banded traversal-string lower bounds. Identical results by construction;
// the table shows the verification-time difference.
func AblationVerification(c Config) *Table {
	ts := synth.Synthetic(c.n(10000), c.Seed)
	t := &Table{
		Title:   fmt.Sprintf("Ablation: verification strategy (%d trees)", len(ts)),
		Columns: []string{"tau", "variant", "verify", "total", "vs PRT"},
	}
	for tau := 1; tau <= 5; tau++ {
		base := Run(PRT, "Synthetic", ts, tau, c.Workers)
		hyb := Run(PRTHybrid, "Synthetic", ts, tau, c.Workers)
		t.AddRow(fmt.Sprintf("%d", tau), string(PRT), dur(base.Verify), dur(base.Total()), "1.00x")
		ratio := float64(hyb.Total()) / float64(base.Total())
		t.AddRow(fmt.Sprintf("%d", tau), string(PRTHybrid), dur(hyb.Verify), dur(hyb.Total()),
			fmt.Sprintf("%.2fx", ratio))
		c.report("ablation-verify τ=%d: plain=%v hybrid=%v", tau, base.Total(), hyb.Total())
	}
	return t
}

// BaselinePanorama compares every filtering method in this module — the
// paper's STR/SET/PRT plus the survey's other filters (HIST of Kailing et
// al., EUL of Akutsu et al.) — on the synthetic dataset across τ. A
// reproduction extension (not a paper figure): it places PartSJ inside the
// wider lower-bound landscape of the survey [18].
func BaselinePanorama(c Config) *Table {
	ts := synth.Synthetic(c.n(10000), c.Seed)
	t := &Table{
		Title:   fmt.Sprintf("Extension: all filtering methods (%d trees)", len(ts)),
		Columns: []string{"tau", "method", "candidates", "candgen", "verify", "total"},
	}
	for tau := 1; tau <= 5; tau++ {
		for _, m := range []Method{STR, SET, HIST, EUL, PRT} {
			r := Run(m, "Synthetic", ts, tau, c.Workers)
			t.AddRow(fmt.Sprintf("%d", tau), string(m),
				count(r.Candidates), dur(r.CandGen), dur(r.Verify), dur(r.Total()))
			c.report("panorama τ=%d %s: cand=%d total=%v", tau, m, r.Candidates, r.Total())
		}
	}
	return t
}

// FilterPipeline measures the engine's filter chaining: each method alone
// versus the same method with the cheap HIST statistics screen chained in
// front of it, with per-stage kill attribution. An engine extension (not a
// paper figure): it shows where a cascade's pruning happens and what the
// cheap first link saves the expensive second one.
func FilterPipeline(c Config) *Table {
	ts := synth.Synthetic(c.n(10000), c.Seed)
	t := &Table{
		Title:   fmt.Sprintf("Extension: filter pipelines (%d trees)", len(ts)),
		Columns: []string{"tau", "pipeline", "stage kills", "candidates", "candgen", "total"},
	}
	for tau := 1; tau <= 3; tau += 2 {
		for _, m := range []Method{PRT, PRTHist, STR, STRHist, PQG, PQGHist} {
			r := Run(m, "Synthetic", ts, tau, c.Workers)
			kills := "-"
			if len(r.Stages) > 0 {
				kills = ""
				for i, s := range r.Stages {
					if i > 0 {
						kills += " "
					}
					kills += fmt.Sprintf("%s:%s", s.Name, count(s.Pruned))
				}
			}
			t.AddRow(fmt.Sprintf("%d", tau), string(m), kills,
				count(r.Candidates), dur(r.CandGen), dur(r.Total()))
			c.report("pipeline τ=%d %s: cand=%d total=%v", tau, m, r.Candidates, r.Total())
		}
	}
	return t
}

// AblationPosition measures the two-layer index's position layer: the sound
// size-difference-aware default, the paper's tighter ranges, and no position
// layer at all. A reproduction extension (not a paper figure).
func AblationPosition(c Config) *Table {
	ts := synth.Synthetic(c.n(10000), c.Seed)
	t := &Table{
		Title:   fmt.Sprintf("Ablation: position-filter variants (%d trees)", len(ts)),
		Columns: []string{"tau", "variant", "candidates", "results", "total"},
	}
	for tau := 1; tau <= 5; tau++ {
		for _, m := range []Method{PRT, PRTPaper, PRTNoPos} {
			r := Run(m, "Synthetic", ts, tau, c.Workers)
			t.AddRow(fmt.Sprintf("%d", tau), string(m), count(r.Candidates), count(r.Results), dur(r.Total()))
			c.report("ablation-pos τ=%d %s: cand=%d total=%v", tau, m, r.Candidates, r.Total())
		}
	}
	return t
}
