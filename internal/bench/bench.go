// Package bench is the experiment harness that regenerates the paper's
// evaluation (Figures 10–14, Table 1's parameter grid, and the partitioning
// ablation the paper describes in §4.3's closing paragraph). Each figure
// function runs the relevant joins and returns text tables whose rows mirror
// the series of the corresponding plot; cmd/benchfig prints them, and
// bench_test.go wraps them as testing.B benchmarks.
//
// The paper's collections (up to 100K trees) are scaled by Config.Scale so
// experiments finish in laptop time; the shape of the comparison — who wins,
// by what factor, how gaps move with τ and cardinality — is the quantity
// being reproduced, not the absolute seconds (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"time"

	"treejoin/internal/baseline"
	"treejoin/internal/core"
	"treejoin/internal/engine"
	"treejoin/internal/pqgram"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// Method identifies a join algorithm/configuration under measurement.
type Method string

const (
	STR       Method = "STR"
	SET       Method = "SET"
	PRT       Method = "PRT"
	PRTRandom Method = "PRT-rand"  // random δ-partitioning (ablation)
	PRTPaper  Method = "PRT-paper" // paper's position ranges (ablation)
	PRTNoPos  Method = "PRT-nopos" // no position layer (ablation)
	PRTHybrid Method = "PRT-hyb"   // string-lower-bound verification prefilter
	BF        Method = "BF"        // size filter only (oracle / REL)
	HIST      Method = "HIST"      // Kailing et al. histogram bounds (extension)
	EUL       Method = "EUL"       // Akutsu et al. Euler-string bound (extension)
	PQG       Method = "PQG"       // Euler-gram bag bound (extension)
	PRTHist   Method = "HIST→PRT"  // HIST prefilter chained before PartSJ
	STRHist   Method = "HIST→STR"  // HIST prefilter chained before STR
	PQGHist   Method = "HIST→PQG"  // HIST prefilter chained before PQG
)

// Result is one join execution's measurements.
type Result struct {
	Method     Method
	Dataset    string
	Tau        int
	Trees      int
	Candidates int64
	Results    int64
	CandGen    time.Duration // candidate generation (+ partitioning for PRT)
	Verify     time.Duration // exact TED computation
	Stages     []sim.StageStats
}

// Total is the end-to-end join time.
func (r Result) Total() time.Duration { return r.CandGen + r.Verify }

// Run executes one join and collects its measurements.
func Run(m Method, dataset string, ts []*tree.Tree, tau, workers int) Result {
	var st *sim.Stats
	switch m {
	case STR:
		_, st = baseline.STR(ts, baseline.Options{Tau: tau, Workers: workers})
	case SET:
		_, st = baseline.SET(ts, baseline.Options{Tau: tau, Workers: workers})
	case BF:
		_, st = baseline.BruteForce(ts, baseline.Options{Tau: tau, Workers: workers})
	case HIST:
		_, st = baseline.HIST(ts, baseline.Options{Tau: tau, Workers: workers})
	case EUL:
		_, st = baseline.EUL(ts, baseline.Options{Tau: tau, Workers: workers})
	case PRTRandom:
		_, st = core.SelfJoin(ts, core.Options{Tau: tau, Workers: workers, RandomPartition: true, Seed: 42})
	case PRTPaper:
		_, st = core.SelfJoin(ts, core.Options{Tau: tau, Workers: workers, Position: core.PositionPaper})
	case PRTNoPos:
		_, st = core.SelfJoin(ts, core.Options{Tau: tau, Workers: workers, Position: core.PositionOff})
	case PRTHybrid:
		_, st = core.SelfJoin(ts, core.Options{Tau: tau, Workers: workers, HybridVerify: true})
	case PQG:
		_, st = loopJob(tau, workers, pqgram.Filter(0)).SelfJoin(ts)
	case PRTHist:
		_, st = core.Options{Tau: tau, Workers: workers}.
			Job(0, []engine.PairFilter{baseline.HISTFilter()}).SelfJoin(ts)
	case STRHist:
		_, st = loopJob(tau, workers, baseline.HISTFilter(), baseline.STRFilter()).SelfJoin(ts)
	case PQGHist:
		_, st = loopJob(tau, workers, baseline.HISTFilter(), pqgram.Filter(0)).SelfJoin(ts)
	default:
		_, st = core.SelfJoin(ts, core.Options{Tau: tau, Workers: workers})
	}
	return Result{
		Method:     m,
		Dataset:    dataset,
		Tau:        tau,
		Trees:      len(ts),
		Candidates: st.Candidates,
		Results:    st.Results,
		CandGen:    st.CandTime + st.PartitionTime,
		Verify:     st.VerifyTime,
		Stages:     st.Stages,
	}
}

// loopJob assembles a sorted-nested-loop engine job with the given filter
// chain — the shape of every non-PRT method.
func loopJob(tau, workers int, filters ...engine.PairFilter) engine.Job {
	return engine.Job{
		Source:  engine.SortedLoop(),
		Filters: filters,
		Tau:     tau,
		Workers: workers,
	}
}

// Dataset is a named tree collection.
type Dataset struct {
	Name  string
	Trees []*tree.Tree
}

// Config controls an experiment run.
type Config struct {
	// Scale multiplies the paper's collection cardinalities (100K/50K/10K/
	// 10K). Scale 0.01 gives 1000/500/100/100 trees.
	Scale float64
	// Seed drives the data generators.
	Seed int64
	// Workers parallelises TED verification (0/1 = sequential, matching the
	// paper's single-threaded runs).
	Workers int
	// Progress, when non-nil, receives one line per completed join.
	Progress func(string)
}

func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 20 {
		n = 20
	}
	return n
}

func (c Config) report(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// Datasets materialises the four collections of §4 at the configured scale.
func Datasets(c Config) []Dataset {
	return []Dataset{
		{"Swissprot", synth.Swissprot(c.n(100000), c.Seed)},
		{"Treebank", synth.Treebank(c.n(50000), c.Seed)},
		{"Sentiment", synth.Sentiment(c.n(10000), c.Seed)},
		{"Synthetic", synth.Synthetic(c.n(10000), c.Seed)},
	}
}
