package sim_test

import (
	"context"
	"fmt"
	"testing"

	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// The verify-stage benchmark: the whole stage as the engine runs it —
// candidate take, verifier dispatch, pair delivery — not just the kernel.
// BENCH_verify.json pairs these with internal/ted's kernel benchmarks: the
// kernel entries isolate the DP, these measure what a join's verify phase
// actually costs end to end under each verifier generation.

// stageWorkload mirrors internal/ted's verifyWorkload (same generator
// parameters and seed), so stage and kernel numbers describe one candidate
// stream: 276 unordered pairs over a clustered 24-tree collection.
func stageWorkload() ([]*tree.Tree, []sim.Candidate) {
	ts := synth.Generate(synth.Params{
		N: 24, AvgSize: 56, MaxFanout: 4, MaxDepth: 10, Labels: 16,
		DepthBias: 0.1, Cluster: 4, Decay: 0.04, Seed: 17,
	})
	var cands []sim.Candidate
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			cands = append(cands, sim.Candidate{I: i, J: j})
		}
	}
	return ts, cands
}

func drain(p sim.Pair) bool { return true }

// BenchmarkVerifyStageBanded is the pre-arena stage: the pointer-based
// τ-banded verifier behind the per-candidate Verifier interface, exactly the
// shape the engine ran before batching (prep lookups resolved up front, one
// virtual call and one pooled-scratch acquire/release per pair).
func BenchmarkVerifyStageBanded(b *testing.B) {
	ts, cands := stageWorkload()
	preps := make([]*ted.Prep, len(ts))
	for i, t := range ts {
		preps[i] = ted.NewPrep(t)
	}
	var tc ted.Counters
	// Preps resolved by identity up front, as the engine's pre-batching
	// verifier closure held them.
	byTree := make(map[*tree.Tree]*ted.Prep, len(ts))
	for i, t := range ts {
		byTree[t] = preps[i]
	}
	for _, tau := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			v := func(t1, t2 *tree.Tree, tau int) (int, bool) {
				return ted.DistanceBoundedPrep(byTree[t1], byTree[t2], tau, &tc)
			}
			for i := 0; i < b.N; i++ {
				var st sim.Stats
				sim.VerifyStream(ctx, ts, cands, tau, v, 1, &st, drain)
			}
		})
	}
}

// BenchmarkVerifyStageArena is the batched arena stage: per-worker
// BatchVerifier over struct-of-arrays views, chunked candidate take, scratch
// held for the whole run. Workers = 1 keeps the comparison like-for-like on
// single-core runners; the stage parallelises by minting one verifier per
// worker (see BenchmarkVerifyStageArenaParallel).
func BenchmarkVerifyStageArena(b *testing.B) {
	ts, cands := stageWorkload()
	views := ted.BuildViews(ts)
	var tc ted.Counters
	factory := func() sim.BatchVerifier { return arenaBatch{views: views, s: ted.AcquireScratch(), tc: &tc} }
	for _, tau := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tau=%d", tau), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				var st sim.Stats
				sim.VerifyStreamBatched(ctx, cands, tau, factory, 1, &st, drain)
			}
		})
	}
}

// BenchmarkVerifyStageArenaParallel is the batched arena stage at the worker
// counts a join actually runs with. On a single-core machine this measures
// scheduling overhead, not speedup — BENCH_verify.json records the core
// count next to these numbers for that reason.
func BenchmarkVerifyStageArenaParallel(b *testing.B) {
	ts, cands := stageWorkload()
	views := ted.BuildViews(ts)
	var tc ted.Counters
	factory := func() sim.BatchVerifier { return arenaBatch{views: views, s: ted.AcquireScratch(), tc: &tc} }
	const tau = 8
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				var st sim.Stats
				sim.VerifyStreamBatched(ctx, cands, tau, factory, workers, &st, drain)
			}
		})
	}
}

// arenaBatch duplicates the engine's arena BatchVerifier here (sim cannot
// import engine — engine imports sim), with identical per-pair work.
type arenaBatch struct {
	views []*ted.TreeView
	s     *ted.VerifyScratch
	tc    *ted.Counters
}

func (v arenaBatch) VerifyPair(i, j, tau int) (int, bool) {
	return ted.DistanceBoundedView(v.views[i], v.views[j], tau, v.s, v.tc)
}

func (v arenaBatch) Close() { ted.ReleaseScratch(v.s) }
