// Package sim holds the plumbing shared by every similarity-join method in
// this module: result pairs, per-phase statistics, size-ordered processing,
// and a parallel TED verification stage.
package sim

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Pair is one similarity-join result: trees I and J (indices into the joined
// collection, I < J) with TED Dist ≤ τ.
type Pair struct {
	I, J int
	Dist int
}

// SortPairs orders pairs by (I, J); all join methods return this canonical
// order so results can be compared directly.
func SortPairs(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

// StageStats attributes filtering work to one pipeline stage: how many pairs
// the stage was offered and how many it killed. The engine records one entry
// per *executed* filter, in the order the stages actually ran — when a
// planner reorders or drops stages, the entries follow the executed chain,
// not the configured one — so a filter chain's ablation (which stage does
// the pruning) reads directly off a join's Stats.
type StageStats struct {
	Name   string // filter name, e.g. "HIST"
	In     int64  // pairs offered to the stage
	Pruned int64  // pairs the stage eliminated

	// SampledNs and Sampled record the stage's per-pair cost by sampling:
	// every sampled screening call times this stage's predicate and adds the
	// elapsed nanoseconds here. The ratio SampledNs/Sampled estimates the
	// predicate's cost; the cost model's chain ordering runs on it.
	SampledNs int64
	Sampled   int64
}

// Out returns the number of pairs that survived the stage.
func (s StageStats) Out() int64 { return s.In - s.Pruned }

// CostNs returns the sampled per-pair predicate cost in nanoseconds, or 0
// when no screening call was sampled.
func (s StageStats) CostNs() float64 {
	if s.Sampled == 0 {
		return 0
	}
	return float64(s.SampledNs) / float64(s.Sampled)
}

// PlanRecord describes the execution plan a run was given: which candidate
// source was configured, the filter chain in executed order, the prefix
// multiplier the token index ran with (0 when no index was involved), and
// where the plan came from — "fixed" (the static default or an explicit
// WithFixedPlan), "calibrated" (chosen by the cost model from a sampled
// calibration probe), or "observed" (chosen from completed-run feedback).
type PlanRecord struct {
	Source  string
	Chain   []string
	PrefixC int
	Origin  string
}

// Stats records where a join spent its effort; the split between candidate
// generation and TED verification is the quantity the paper's Figures 10/12
// plot.
type Stats struct {
	Trees      int           // collection size
	Candidates int64         // pairs that reached the TED verifier
	Results    int64         // pairs with TED ≤ τ
	CandTime   time.Duration // candidate generation (filtering) time, summed across tasks (CPU effort)
	VerifyTime time.Duration // exact TED computation time

	// CandWall is the wall-clock time of the candidate-generation stage:
	// filter preparation plus the elapsed time of the source's task pool,
	// with inline verification carved out. CandTime sums each task's own
	// clock, so on a multi-core run it measures CPU effort and can exceed
	// the wall clock; CandWall is what the user waited.
	CandWall time.Duration

	// Source names the candidate source that actually ran ("sorted-loop",
	// "token-index", "partsj"). When a source falls back — the token index
	// reverts to the sorted loop on tiny corpora or oversized thresholds —
	// the effective source is reported, not the configured one.
	Source string

	// Stages holds per-filter attribution when the join ran a filter
	// pipeline: one entry per stage, in the order the stages ran.
	Stages []StageStats

	// Plan records the execution plan behind the run (source, executed
	// filter order, prefix multiplier, and the plan's origin); see
	// PlanRecord. Always stamped by the treejoin layer, whether the plan was
	// fixed or chosen by the adaptive planner.
	Plan PlanRecord

	// PartSJ-specific counters (zero for the baselines).
	PartitionTime     time.Duration // δ-partitioning of all trees
	IndexedSubgraphs  int64         // subgraphs inserted into the two-layer index
	SubgraphProbes    int64         // index bucket entries inspected
	MatchTests        int64         // full subgraph-match verifications run
	MatchHits         int64         // match tests that succeeded
	SmallTreeFallback int64         // candidate pairs produced by the small-tree path

	// Token-index source counters (zero unless the join's candidates came
	// from engine.TokenIndexSource). IndexBuildTime is a breakdown of
	// CandTime (tokenisation, frequency ranking, prefix construction), not
	// an addition to Total.
	IndexBuildTime  time.Duration // building the frequency-ordered prefix index
	PostingsScanned int64         // posting-list entries inspected while probing
	SkippedByCount  int64         // partners discarded because their shared-token count proved the bound unreachable

	// PostingsTombstoned counts posting-list entries skipped because they
	// referenced removed trees — the probe-side cost of a dynamic corpus's
	// tombstone scheme, paid until compaction rewrites the lists (zero for
	// static corpora and per-run indexes, which never tombstone).
	PostingsTombstoned int64

	// PairsRetracted counts result pairs withdrawn from a standing
	// incremental result set because one of their trees was removed (see
	// Incremental.Retracted); zero for one-shot joins.
	PairsRetracted int64

	// τ-banded verifier counters, recorded by the default threshold-aware
	// TED verifier (zero when a custom Verifier decided the candidates; see
	// internal/ted and DESIGN.md, "Threshold-aware verification").
	DPAvoided       int64 // candidates settled by the size/label lower bounds alone — full DPs avoided
	KeyrootsSkipped int64 // keyroot-pair forest DPs pruned by the positional skip
	BandAborts      int64 // forest DPs cut short when a banded row's frontier exceeded τ

	// Decomposition-strategy counters, recorded by the arena verifier: how
	// many candidate pairs ran the DP under each RTED-style per-pair choice
	// (left-path arrays vs. the mirrored right-path arrays). Pairs settled by
	// the lower bounds alone count under neither.
	StrategyLeft  int64
	StrategyRight int64
}

// Total returns the end-to-end join time.
func (s *Stats) Total() time.Duration {
	return s.CandTime + s.VerifyTime + s.PartitionTime
}

// NormalizeWorkers resolves a caller-supplied worker count: values below 1
// ("unset") become runtime.GOMAXPROCS(0) — use every core the runtime will
// schedule on — and explicit counts pass through. Every component that deals
// tasks to a pool (the engine's collection, the incremental stream's
// verification) normalizes through this one function.
func NormalizeWorkers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Verifier decides whether a candidate pair is a result: it reports the
// distance and whether it is ≤ tau. The default is ted.DistanceBounded;
// tests inject instrumented verifiers.
type Verifier func(t1, t2 *tree.Tree, tau int) (int, bool)

// DefaultVerifier is the τ-banded bounded TED (RTED-style strategy choice,
// threshold-aware DP). Engine-driven joins install a cache-backed variant
// that reuses per-tree preparations; this uncached form is the fallback for
// direct VerifyStream callers.
func DefaultVerifier(t1, t2 *tree.Tree, tau int) (int, bool) {
	return ted.DistanceBounded(t1, t2, tau)
}

// SizeOrder returns tree indices sorted by ascending size, ties by index, as
// required by Algorithm 1 (line 3).
func SizeOrder(ts []*tree.Tree) []int {
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ts[order[a]].Size() < ts[order[b]].Size()
	})
	return order
}

// Candidate is a pair awaiting verification.
type Candidate struct{ I, J int }

// EmitFunc consumes one verified pair. Returning false asks the producer to
// stop early; producers may still deliver pairs already in flight.
type EmitFunc func(Pair) bool

// VerifyAll runs the verifier over cands, optionally in parallel, and returns
// the confirmed pairs (unsorted). workers ≤ 1 verifies inline. The elapsed
// wall-clock time is added to stats.VerifyTime and len(cands) to
// stats.Candidates.
func VerifyAll(ts []*tree.Tree, cands []Candidate, tau int, verify Verifier, workers int, stats *Stats) []Pair {
	var out []Pair
	VerifyStream(context.Background(), ts, cands, tau, verify, workers, stats, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// verifyCtxStride bounds how many candidates a verification loop decides
// between context checks: small enough that cancellation aborts within a few
// TED computations, large enough that the check never shows up in a profile.
const verifyCtxStride = 16

// verifyBatchChunk is how many candidates a parallel verify worker claims per
// lock acquisition. Candidate decisions are microseconds, not nanoseconds, so
// the chunk is about amortising the take/deliver mutex and keeping each
// worker on one run of the candidate slice (the pairs of a run share trees
// far more often than random pairs do — the arena verifier's prep lookups and
// scratch stay hot); it is small enough that the tail imbalance stays under a
// chunk's worth of work per worker.
const verifyBatchChunk = 32

// BatchVerifier is a per-worker verification context: it decides candidate
// pairs by collection index and may hold worker-private state — DP scratch, a
// prep table — that VerifyPair reuses across the whole batch. Close releases
// that state (returns scratch to its pool); the verifier must not be used
// after Close. A BatchVerifier is confined to one goroutine, so VerifyPair
// needs no locking.
type BatchVerifier interface {
	VerifyPair(i, j, tau int) (dist int, ok bool)
	Close()
}

// BatchVerifierFactory mints one BatchVerifier per verify worker. The factory
// itself may be called from multiple goroutines; the verifiers it returns are
// not shared.
type BatchVerifierFactory func() BatchVerifier

// funcVerifier adapts a stateless pairwise Verifier to the batch interface.
type funcVerifier struct {
	ts []*tree.Tree
	v  Verifier
}

func (f funcVerifier) VerifyPair(i, j, tau int) (int, bool) { return f.v(f.ts[i], f.ts[j], tau) }
func (f funcVerifier) Close()                               {}

// AdaptVerifier lifts a stateless Verifier into a BatchVerifierFactory, so
// custom verifiers (tests, ablations) run through the same batched stage as
// the arena verifier. A nil v adapts DefaultVerifier.
func AdaptVerifier(ts []*tree.Tree, v Verifier) BatchVerifierFactory {
	if v == nil {
		v = DefaultVerifier
	}
	return func() BatchVerifier { return funcVerifier{ts: ts, v: v} }
}

// VerifyStream runs the verifier over cands and hands each confirmed pair to
// emit as soon as it is decided. workers ≤ 1 verifies inline; with more, emit
// is called from multiple goroutines but never concurrently (the stream is
// serialised). The loop aborts early when ctx is cancelled or emit returns
// false; candidates decided so far keep their accounting. The elapsed
// wall-clock time is added to stats.VerifyTime and len(cands) to
// stats.Candidates.
func VerifyStream(ctx context.Context, ts []*tree.Tree, cands []Candidate, tau int, verify Verifier, workers int, stats *Stats, emit EmitFunc) {
	VerifyStreamBatched(ctx, cands, tau, AdaptVerifier(ts, verify), workers, stats, emit)
}

// VerifyStreamWith verifies cands inline with one caller-owned BatchVerifier.
// It is the sequential core the engine's chunked inline flushes run on: the
// verifier persists across flushes (the caller Closes it when the whole task
// is done), so per-flush cost is the candidates alone. Accounting matches
// VerifyStream: elapsed time into stats.VerifyTime, len(cands) into
// stats.Candidates.
func VerifyStreamWith(ctx context.Context, cands []Candidate, tau int, v BatchVerifier, stats *Stats, emit EmitFunc) {
	start := time.Now()
	defer func() {
		stats.VerifyTime += time.Since(start)
		stats.Candidates += int64(len(cands))
	}()
	for k, c := range cands {
		if k%verifyCtxStride == 0 && ctx.Err() != nil {
			return
		}
		if d, ok := v.VerifyPair(c.I, c.J, tau); ok {
			if !emit(makePair(c, d)) {
				return
			}
		}
	}
}

// VerifyStreamBatched is the batched form of VerifyStream: each worker mints
// one BatchVerifier from factory, claims candidates in chunks of
// verifyBatchChunk per lock acquisition, decides the chunk without touching
// shared state, and delivers its confirmed pairs under one lock — so the
// per-candidate cost of the stage is the verifier alone. Confirmed pairs are
// emitted serially (never concurrently), grouped by chunk; ordering across
// workers is arbitrary, as with VerifyStream. Every minted verifier is
// Closed before return, including on early abort.
func VerifyStreamBatched(ctx context.Context, cands []Candidate, tau int, factory BatchVerifierFactory, workers int, stats *Stats, emit EmitFunc) {
	start := time.Now()
	defer func() {
		stats.VerifyTime += time.Since(start)
		stats.Candidates += int64(len(cands))
	}()
	if len(cands) == 0 {
		return
	}
	if workers <= 1 || len(cands) < 2 {
		v := factory()
		defer v.Close()
		for k, c := range cands {
			if k%verifyCtxStride == 0 && ctx.Err() != nil {
				return
			}
			if d, ok := v.VerifyPair(c.I, c.J, tau); ok {
				if !emit(makePair(c, d)) {
					return
				}
			}
		}
		return
	}
	if workers > (len(cands)+verifyBatchChunk-1)/verifyBatchChunk {
		workers = (len(cands) + verifyBatchChunk - 1) / verifyBatchChunk
	}
	var next int
	var stopped bool
	var mu sync.Mutex // guards next, stopped, and the emit stream
	var wg sync.WaitGroup
	take := func() (int, int) {
		mu.Lock()
		defer mu.Unlock()
		if stopped || next >= len(cands) {
			return -1, -1
		}
		if ctx.Err() != nil {
			stopped = true
			return -1, -1
		}
		lo := next
		hi := lo + verifyBatchChunk
		if hi > len(cands) {
			hi = len(cands)
		}
		next = hi
		return lo, hi
	}
	deliver := func(ps []Pair) {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		for _, p := range ps {
			if !emit(p) {
				stopped = true
				return
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := factory()
			defer v.Close()
			buf := make([]Pair, 0, verifyBatchChunk)
			for {
				lo, hi := take()
				if lo < 0 {
					return
				}
				buf = buf[:0]
				for k := lo; k < hi; k++ {
					c := cands[k]
					if d, ok := v.VerifyPair(c.I, c.J, tau); ok {
						buf = append(buf, makePair(c, d))
					}
				}
				if len(buf) > 0 {
					deliver(buf)
				}
			}
		}()
	}
	wg.Wait()
}

func makePair(c Candidate, d int) Pair {
	if c.I < c.J {
		return Pair{I: c.I, J: c.J, Dist: d}
	}
	return Pair{I: c.J, J: c.I, Dist: d}
}
