package sim_test

import (
	"context"
	"sync"
	"testing"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// recordingFactory wraps AdaptVerifier-style verification with mint/close
// accounting, so the tests can assert the batched stage's verifier lifecycle:
// every minted per-worker verifier is closed exactly once, on every path.
type recordingFactory struct {
	ts     []*tree.Tree
	mu     sync.Mutex
	minted int
	closed int
}

type recordingVerifier struct {
	f *recordingFactory
}

func (v recordingVerifier) VerifyPair(i, j, tau int) (int, bool) {
	return sim.DefaultVerifier(v.f.ts[i], v.f.ts[j], tau)
}

func (v recordingVerifier) Close() {
	v.f.mu.Lock()
	v.f.closed++
	v.f.mu.Unlock()
}

func (f *recordingFactory) factory() sim.BatchVerifier {
	f.mu.Lock()
	f.minted++
	f.mu.Unlock()
	return recordingVerifier{f: f}
}

func batchFixture(t *testing.T) ([]*tree.Tree, []sim.Candidate) {
	t.Helper()
	lt := tree.NewLabelTable()
	specs := []string{
		"{a{b}{c}}", "{a{b}{d}}", "{a{b}}", "{x{y{z}}}", "{x{y}}",
		"{a{b}{c{d}}}", "{q}", "{a{c}{b}}", "{x{z{y}}}", "{a{b}{c}{d}}",
	}
	ts := make([]*tree.Tree, len(specs))
	for i, s := range specs {
		ts[i] = tree.MustParseBracket(s, lt)
	}
	var cands []sim.Candidate
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			cands = append(cands, sim.Candidate{I: i, J: j})
		}
	}
	return ts, cands
}

// TestVerifyStreamBatchedMatchesSequential: the batched stage returns the
// exact pair set of the sequential verifier at every worker count, and every
// minted verifier is closed.
func TestVerifyStreamBatchedMatchesSequential(t *testing.T) {
	ts, cands := batchFixture(t)
	for _, tau := range []int{0, 1, 3} {
		var ref sim.Stats
		want := sim.VerifyAll(ts, cands, tau, nil, 1, &ref)
		sim.SortPairs(want)
		for _, workers := range []int{1, 2, 8} {
			rf := &recordingFactory{ts: ts}
			var st sim.Stats
			var got []sim.Pair
			sim.VerifyStreamBatched(context.Background(), cands, tau, rf.factory, workers, &st, func(p sim.Pair) bool {
				got = append(got, p)
				return true
			})
			sim.SortPairs(got)
			if len(got) != len(want) {
				t.Fatalf("τ=%d w=%d: %d pairs, want %d", tau, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("τ=%d w=%d: pair %d = %v, want %v", tau, workers, i, got[i], want[i])
				}
			}
			if st.Candidates != int64(len(cands)) {
				t.Fatalf("τ=%d w=%d: candidates = %d, want %d", tau, workers, st.Candidates, len(cands))
			}
			if rf.minted == 0 || rf.minted != rf.closed {
				t.Fatalf("τ=%d w=%d: minted %d verifiers, closed %d", tau, workers, rf.minted, rf.closed)
			}
		}
	}
}

// TestVerifyStreamBatchedEarlyStop: a sink that stops the stream still gets
// every minted verifier closed, and the stage stops delivering.
func TestVerifyStreamBatchedEarlyStop(t *testing.T) {
	ts, cands := batchFixture(t)
	for _, workers := range []int{1, 4} {
		rf := &recordingFactory{ts: ts}
		var st sim.Stats
		emitted := 0
		sim.VerifyStreamBatched(context.Background(), cands, 4, rf.factory, workers, &st, func(sim.Pair) bool {
			emitted++
			return false
		})
		if emitted != 1 {
			t.Fatalf("w=%d: emit called %d times after stop", workers, emitted)
		}
		if rf.minted == 0 || rf.minted != rf.closed {
			t.Fatalf("w=%d: minted %d verifiers, closed %d", workers, rf.minted, rf.closed)
		}
	}
}

// TestVerifyStreamBatchedCancellation: a pre-cancelled context verifies
// nothing but still balances the verifier lifecycle.
func TestVerifyStreamBatchedCancellation(t *testing.T) {
	ts, cands := batchFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		rf := &recordingFactory{ts: ts}
		var st sim.Stats
		sim.VerifyStreamBatched(ctx, cands, 4, rf.factory, workers, &st, func(sim.Pair) bool {
			t.Fatal("emit after cancellation")
			return false
		})
		if rf.minted != rf.closed {
			t.Fatalf("w=%d: minted %d verifiers, closed %d", workers, rf.minted, rf.closed)
		}
	}
}

// TestVerifyStreamWith: the caller-owned inline form decides the same pairs
// and accounts candidates, without closing the verifier it was lent.
func TestVerifyStreamWith(t *testing.T) {
	ts, cands := batchFixture(t)
	rf := &recordingFactory{ts: ts}
	v := rf.factory()
	var st sim.Stats
	var got []sim.Pair
	// Two flushes over halves, as the engine's inline chunking drives it.
	half := len(cands) / 2
	for _, chunk := range [][]sim.Candidate{cands[:half], cands[half:]} {
		sim.VerifyStreamWith(context.Background(), chunk, 3, v, &st, func(p sim.Pair) bool {
			got = append(got, p)
			return true
		})
	}
	var ref sim.Stats
	want := sim.VerifyAll(ts, cands, 3, nil, 1, &ref)
	sim.SortPairs(want)
	sim.SortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, got[i], want[i])
		}
	}
	if st.Candidates != int64(len(cands)) {
		t.Fatalf("candidates = %d, want %d", st.Candidates, len(cands))
	}
	if rf.closed != 0 {
		t.Fatal("VerifyStreamWith closed the caller's verifier")
	}
	v.Close()
	if rf.closed != 1 {
		t.Fatalf("closed = %d after explicit Close", rf.closed)
	}
}
