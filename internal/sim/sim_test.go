package sim_test

import (
	"math/rand"
	"sort"
	"testing"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

func TestSortPairs(t *testing.T) {
	ps := []sim.Pair{{I: 2, J: 3}, {I: 0, J: 5}, {I: 2, J: 1}, {I: 0, J: 2}}
	sim.SortPairs(ps)
	want := []sim.Pair{{I: 0, J: 2}, {I: 0, J: 5}, {I: 2, J: 1}, {I: 2, J: 3}}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("sorted = %v", ps)
		}
	}
}

func TestSizeOrder(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c}}", lt),    // 3
		tree.MustParseBracket("{a}", lt),          // 1
		tree.MustParseBracket("{a{b}}", lt),       // 2
		tree.MustParseBracket("{a{b{c}{d}}}", lt), // 4
		tree.MustParseBracket("{z{y}}", lt),       // 2 (tie with index 2)
	}
	order := sim.SizeOrder(ts)
	sizes := make([]int, len(order))
	for i, idx := range order {
		sizes[i] = ts[idx].Size()
	}
	if !sort.IntsAreSorted(sizes) {
		t.Fatalf("sizes not ascending: %v", sizes)
	}
	// Stability: equal sizes keep index order.
	pos2, pos4 := -1, -1
	for i, idx := range order {
		if idx == 2 {
			pos2 = i
		}
		if idx == 4 {
			pos4 = i
		}
	}
	if pos2 > pos4 {
		t.Fatal("size order not stable for ties")
	}
}

func TestVerifyAllSequentialVsParallel(t *testing.T) {
	lt := tree.NewLabelTable()
	rng := rand.New(rand.NewSource(77))
	var ts []*tree.Tree
	for i := 0; i < 20; i++ {
		b := tree.NewBuilder(lt)
		b.Root("r")
		n := 1 + rng.Intn(12)
		for j := 1; j < n; j++ {
			b.Child(int32(rng.Intn(j)), string(rune('a'+rng.Intn(3))))
		}
		ts = append(ts, b.MustBuild())
	}
	var cands []sim.Candidate
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			cands = append(cands, sim.Candidate{I: i, J: j})
		}
	}
	for _, tau := range []int{0, 2, 5} {
		var s1, s2 sim.Stats
		seq := sim.VerifyAll(ts, cands, tau, nil, 1, &s1)
		par := sim.VerifyAll(ts, cands, tau, nil, 8, &s2)
		sim.SortPairs(seq)
		sim.SortPairs(par)
		if len(seq) != len(par) {
			t.Fatalf("τ=%d: %d vs %d results", tau, len(seq), len(par))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("τ=%d: pair %d differs: %v vs %v", tau, i, seq[i], par[i])
			}
		}
		if s1.Candidates != int64(len(cands)) || s2.Candidates != int64(len(cands)) {
			t.Fatalf("candidate accounting wrong")
		}
	}
}

func TestVerifyAllNormalisesPairOrder(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a}", lt),
		tree.MustParseBracket("{a}", lt),
	}
	var st sim.Stats
	out := sim.VerifyAll(ts, []sim.Candidate{{I: 1, J: 0}}, 0, nil, 1, &st)
	if len(out) != 1 || out[0].I != 0 || out[0].J != 1 {
		t.Fatalf("pair not normalised: %v", out)
	}
}

func TestVerifyAllCustomVerifier(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a}", lt),
		tree.MustParseBracket("{b}", lt),
	}
	called := 0
	v := func(a, b *tree.Tree, tau int) (int, bool) {
		called++
		return 0, true // everything matches
	}
	var st sim.Stats
	out := sim.VerifyAll(ts, []sim.Candidate{{I: 0, J: 1}}, 0, v, 1, &st)
	if called != 1 || len(out) != 1 {
		t.Fatalf("custom verifier not used (called=%d, out=%v)", called, out)
	}
}

func TestStatsTotal(t *testing.T) {
	s := sim.Stats{CandTime: 2, VerifyTime: 3, PartitionTime: 5}
	if s.Total() != 10 {
		t.Fatalf("Total = %d", s.Total())
	}
}
