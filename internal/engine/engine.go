// Package engine is the composable join pipeline every exact similarity-join
// method in this module runs on. The paper frames PartSJ and its baselines
// alike as one filter-then-verify loop over a size-ordered collection; this
// package implements that loop exactly once:
//
//	CandidateSource ──► PairFilter chain ──► parallel TED verification
//
// A CandidateSource enumerates the pairs its own pruning cannot rule out (the
// PartSJ inverted subgraph index, or the sorted nested loop with the size
// window). A PairFilter is a cheap pair-level test backed by a sound TED
// lower bound — pruning a pair must prove its distance exceeds τ — so any
// chain of filters in front of any source leaves the result set untouched.
// Surviving candidates are verified with the exact bounded TED.
//
// The engine owns everything the five former copies of the loop implemented
// divergently: self joins and cross joins, sequential and parallel candidate
// generation (sources decompose into independent tasks executed on a worker
// pool), parallel verification, per-stage statistics attribution, and
// canonical result ordering. Adding a filter, a backend, or a parallelisation
// strategy means writing one stage, not a sixth loop; see DESIGN.md.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"treejoin/internal/sim"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Collection is the engine's view of the trees being joined: the combined
// collection (A followed by B for cross joins), the TED threshold, and the
// ascending-size processing order of Algorithm 1. It is immutable during a
// run and shared by all tasks.
type Collection struct {
	// Trees is the combined collection. For a cross join it is A ++ B; for a
	// self join it is the collection itself.
	Trees []*tree.Tree
	// Split is len(A) for cross joins and -1 for self joins. In a cross join
	// only pairs straddling the boundary are candidates.
	Split int
	// Tau is the TED threshold τ ≥ 0.
	Tau int
	// Order holds tree indices sorted by ascending size (ties by index).
	Order []int
	// Workers is the worker-pool width the job runs with (≥ 1, normalized
	// from Job.Workers: unset or negative counts become GOMAXPROCS).
	// Sources that can decompose candidate generation cheaply use it as
	// their default task count.
	Workers int
	// PrefixC carries Job.PrefixC: the token-index source's prefix-length
	// multiplier override (0 or values at most the tokenizer's Slack leave
	// the default Slack()·τ+1 prefix).
	PrefixC int

	ctx       context.Context
	cache     *Cache
	sizes     []int // sizes in Order order, for binary-searching the window
	counters  *ted.Counters
	dynTokens func(Tokenizer) *TokenSnap
}

// DynTokenSnap resolves the run's persistent token-index snapshot for tz, or
// nil when the run is not backed by a dynamic corpus (or the corpus chose
// not to materialise one). Sources must still verify the snapshot covers the
// collection before probing it.
func (c *Collection) DynTokenSnap(tz Tokenizer) *TokenSnap {
	if c.dynTokens == nil {
		return nil
	}
	return c.dynTokens(tz)
}

// Cancelled reports whether the run's context has been cancelled — by the
// caller's deadline or cancel, or by a streaming consumer that stopped
// iterating. Sources check it between probes and abandon their loops early;
// the engine then returns whatever statistics accumulated.
func (c *Collection) Cancelled() bool { return c.ctx.Err() != nil }

// Cache returns the run's artifact cache. A corpus-backed run shares the
// corpus cache across joins; a one-shot run gets a private cache that at
// least lets concurrent tasks of the same join share per-tree artifacts.
func (c *Collection) Cache() *Cache { return c.cache }

// VerifyCounters returns the run's shared τ-banded verifier instrumentation.
// Verifiers built for this run (the default TED verifier, the hybrid
// screen's fallback) record their pruning here; the engine folds the totals
// into the run's Stats.
func (c *Collection) VerifyCounters() *ted.Counters { return c.counters }

// Cross reports whether the collection is the union of two sides.
func (c *Collection) Cross() bool { return c.Split >= 0 }

// SameSide reports whether combined indices i and j belong to the same side
// of a cross join (always false for self joins, where every pair qualifies).
func (c *Collection) SameSide(i, j int) bool {
	if !c.Cross() {
		return false
	}
	return (i < c.Split) == (j < c.Split)
}

// WindowStart returns the first position in Order whose tree size is at
// least sz − τ: the start of the size window a probe of size sz must scan.
func (c *Collection) WindowStart(sz int) int {
	min := sz - c.Tau
	return sort.SearchInts(c.sizes, min)
}

func newCollection(ctx context.Context, ts []*tree.Tree, split, tau, workers int, cache *Cache, dynTokens func(Tokenizer) *TokenSnap) *Collection {
	workers = sim.NormalizeWorkers(workers)
	if cache == nil {
		cache = NewCache()
	}
	c := &Collection{Trees: ts, Split: split, Tau: tau, Workers: workers, ctx: ctx, cache: cache, counters: new(ted.Counters), dynTokens: dynTokens}
	c.Order = sim.SizeOrder(ts)
	c.sizes = make([]int, len(c.Order))
	for p, ti := range c.Order {
		c.sizes[p] = ts[ti].Size()
	}
	return c
}

// NewProbeCollection builds a Collection view over ts for calibration
// probes, outside any job: same size ordering, windowing, and artifact-cache
// routing as a real run's collection (so a probe's signature computations
// warm the same cache the run will hit), sized for a single caller. The plan
// package prepares individual filters against it and times their predicates
// over sampled window pairs.
func NewProbeCollection(ctx context.Context, ts []*tree.Tree, tau int, cache *Cache) *Collection {
	return newCollection(ctx, ts, -1, tau, 1, cache, nil)
}

// PairFilter is one pipeline stage: a cheap pair-level test that may prune a
// pair only when a sound TED lower bound proves its distance exceeds τ.
// Prepare runs once per join over the combined collection and returns the
// predicate; the predicate must be safe for concurrent use (the engine calls
// it from every candidate-generation task).
type PairFilter interface {
	// Name labels the stage in Stats.Stages.
	Name() string
	// Prepare precomputes per-tree state and returns the pair predicate:
	// keep(i, j) reports whether the pair may be within c.Tau.
	Prepare(c *Collection) func(i, j int) bool
}

// funcFilter adapts a name and prepare function to the PairFilter interface.
type funcFilter struct {
	name    string
	prepare func(c *Collection) func(i, j int) bool
}

func (f funcFilter) Name() string                              { return f.name }
func (f funcFilter) Prepare(c *Collection) func(i, j int) bool { return f.prepare(c) }

// NewFilter builds a PairFilter from a name and a prepare function.
func NewFilter(name string, prepare func(c *Collection) func(i, j int) bool) PairFilter {
	return funcFilter{name: name, prepare: prepare}
}

// Task is one independent unit of candidate generation. Tasks run
// concurrently on the worker pool, each with its own Pipeline.
type Task func(px *Pipeline)

// CandidateSource enumerates the candidate pairs of a join.
type CandidateSource interface {
	// Name labels the source in diagnostics.
	Name() string
	// Tasks decomposes candidate generation into independent units. The
	// engine passes the job's shard count; shards ≤ 1 asks for the source's
	// natural decomposition (a single sequential task, or a cheap split
	// across c.Workers when the source has no shared state). Together the
	// tasks must offer every unordered candidate pair exactly once.
	Tasks(c *Collection, shards int) []Task
}

// emitter is the serialised result stream of one run: every verified pair —
// from any task's inline flush or from the final pool-wide verification pass
// — funnels through emit, which remaps cross-join indices, drops duplicates
// from overlapping shard tasks, and hands the pair to the consumer's sink. A
// sink that returns false stops the run: the emitter cancels the run context
// and sources abandon their loops.
type emitter struct {
	mu      sync.Mutex
	sink    sim.EmitFunc
	split   int             // ≥ 0: cross join, remap J to the B side
	seen    map[[2]int]bool // non-nil: dedup pairs from multi-task plans
	n       int64           // pairs delivered to the sink
	stopped bool
	cancel  context.CancelFunc
}

func (e *emitter) emit(p sim.Pair) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return false
	}
	if e.split >= 0 {
		// Combined A indices precede B indices, so Pair.I is the A element
		// already; J maps back to its per-collection position.
		p.J -= e.split
	}
	if e.seen != nil {
		k := [2]int{p.I, p.J}
		if e.seen[k] {
			return true // duplicate from an overlapping task; keep going
		}
		e.seen[k] = true
	}
	e.n++
	if !e.sink(p) {
		e.stopped = true
		e.cancel()
		return false
	}
	return true
}

// Pipeline is a task's private view of the filter chain and candidate sink.
// Screen runs the filters over a pair (with per-stage accounting); Emit
// records a surviving pair for verification; Offer combines the two. Sources
// that interleave their own pair-level work with the filters (PartSJ runs
// subgraph-match tests after the prefilters) call Screen and Emit separately
// so the chain prunes a pair before the source spends effort on it.
type Pipeline struct {
	c        *Collection
	preds    []func(i, j int) bool
	counts   []sim.StageStats
	cands    []sim.Candidate
	stats    sim.Stats
	screened uint64 // pairs screened so far, for cost sampling

	// Sequential jobs verify candidates in bounded chunks as they are
	// emitted (Algorithm 1's interleaving, generalised), streaming results
	// to the emitter with peak candidate memory O(flushAt) instead of
	// O(total candidates). Parallel jobs set flushAt = 0 and defer
	// everything to one pool-wide pass, where the bigger batch
	// load-balances better. The flush verifier is minted lazily from the
	// run's factory and persists across flushes (so its scratch stays warm
	// for the whole task); stream() closes it after the tasks finish.
	flushAt    int
	vfactory   sim.BatchVerifierFactory
	bv         sim.BatchVerifier
	em         *emitter
	inlineTime time.Duration
}

// Cancelled reports whether the run should stop: the caller cancelled its
// context or a streaming consumer stopped iterating. Sources check it
// between probes.
func (px *Pipeline) Cancelled() bool { return px.c.Cancelled() }

// flushCandidates verifies and drains the buffered candidates inline,
// streaming confirmed pairs to the emitter. The elapsed time is remembered so
// the engine can carve it back out of the source's candidate-generation clock
// (flushes happen inside the source's timed loop).
func (px *Pipeline) flushCandidates() {
	if len(px.cands) == 0 {
		return
	}
	start := time.Now()
	if px.bv == nil {
		px.bv = px.vfactory()
	}
	sim.VerifyStreamWith(px.c.ctx, px.cands, px.c.Tau, px.bv, &px.stats, px.em.emit)
	px.cands = px.cands[:0]
	px.inlineTime += time.Since(start)
}

// Collection returns the shared collection view.
func (px *Pipeline) Collection() *Collection { return px.c }

// Stats returns the task-local statistics sink; sources add their own
// counters (index probes, match tests, partition time) here. The engine
// merges all task sinks into the join's Stats.
func (px *Pipeline) Stats() *sim.Stats { return &px.stats }

// screenSampleMask selects every 64th screened pair of a task for per-stage
// cost timing: two clock reads per stage on 1/64 of the pairs is invisible
// in a profile, yet a paper-scale join samples thousands of calls per stage
// — plenty for the planner's per-pair cost estimate.
const screenSampleMask = 63

// Screen runs the filter chain over pair (i, j) and reports whether it
// survives every stage. Each pair must be screened at most once per join.
// Every 64th call per task additionally times each stage's predicate,
// feeding the sampled per-pair cost the plan package's chain ordering runs
// on (StageStats.SampledNs/Sampled).
func (px *Pipeline) Screen(i, j int) bool {
	sampled := px.screened&screenSampleMask == 0
	px.screened++
	if sampled {
		return px.screenTimed(i, j)
	}
	for k := range px.preds {
		px.counts[k].In++
		if !px.preds[k](i, j) {
			px.counts[k].Pruned++
			return false
		}
	}
	return true
}

// screenTimed is Screen's sampled path: identical screening, plus per-stage
// predicate timing.
func (px *Pipeline) screenTimed(i, j int) bool {
	for k := range px.preds {
		px.counts[k].In++
		start := time.Now()
		ok := px.preds[k](i, j)
		px.counts[k].SampledNs += time.Since(start).Nanoseconds()
		px.counts[k].Sampled++
		if !ok {
			px.counts[k].Pruned++
			return false
		}
	}
	return true
}

// Emit records pair (i, j) — combined indices, either order — as a candidate
// for TED verification. Callers must have screened the pair.
func (px *Pipeline) Emit(i, j int) {
	px.cands = append(px.cands, sim.Candidate{I: i, J: j})
	if px.flushAt > 0 && len(px.cands) >= px.flushAt {
		px.flushCandidates()
	}
}

// Offer screens pair (i, j) and emits it when it survives.
func (px *Pipeline) Offer(i, j int) {
	if px.Screen(i, j) {
		px.Emit(i, j)
	}
}

// Job describes one join execution: the source, the filter chain, the
// threshold, and the execution knobs. The zero Source means SortedLoop.
type Job struct {
	// Source enumerates candidates; nil means SortedLoop().
	Source CandidateSource
	// Filters is the pipeline the source's pairs must survive, in order.
	Filters []PairFilter
	// Tau is the TED threshold τ ≥ 0.
	Tau int
	// Verifier decides candidate pairs; nil installs the default τ-banded
	// TED verifier over preparations cached in the run's Cache.
	Verifier sim.Verifier
	// VerifierFor, when non-nil and Verifier is nil, builds the verifier
	// from the run's collection (e.g. the hybrid screen's sequence cache,
	// which draws on the collection's artifact cache and verify counters).
	// It runs once per join.
	VerifierFor func(c *Collection) sim.Verifier
	// Workers sizes the worker pool used for candidate generation and TED
	// verification; 1 runs sequentially, and values below 1 ("unset") are
	// normalized to runtime.GOMAXPROCS(0).
	Workers int
	// Shards asks the source to decompose the join into at least this many
	// independent tasks even when that costs extra filtering work (PartSJ's
	// fragment-and-replicate plan rebuilds an index per task). ≤ 1 leaves
	// the decomposition to the source.
	Shards int
	// Cache, when non-nil, is the artifact cache shared across runs (a
	// corpus's cache): per-tree filter signatures and source artifacts are
	// looked up there before being recomputed. nil gives the run a private
	// cache.
	Cache *Cache
	// DynTokens, when non-nil, resolves a persistent token-index snapshot
	// for a tokenizer (a dynamic corpus's maintained inverted index). The
	// token-index source probes the snapshot instead of building a per-run
	// index when the snapshot covers exactly the run's collection; results
	// are identical either way.
	DynTokens func(Tokenizer) *TokenSnap
	// PrefixC, when above the source tokenizer's Slack(), grows the token
	// index's per-tree indexed prefix to PrefixC·τ+1 expanded elements
	// (default Slack()·τ+1). Any such value is sound — a longer prefix is a
	// superset of the proven one and sharpens the count threshold — so the
	// planner may tune it freely; values at or below Slack() are ignored.
	PrefixC int
	// Plan is the execution-plan record the caller stamps into the run's
	// Stats (Stats.Plan) for diagnostics; the engine does not interpret it.
	Plan sim.PlanRecord
}

// SelfJoin runs the job over one collection and reports every unordered pair
// within Tau, in canonical ascending (I, J) order.
//
// It is the uncancellable materialising form of StreamSelf, retained for the
// legacy free functions; it panics on a negative threshold.
func (job Job) SelfJoin(ts []*tree.Tree) ([]sim.Pair, *sim.Stats) {
	return job.collect(context.Background(), ts, -1)
}

// Join runs the job as a cross join: every pair (a ∈ A, b ∈ B) within Tau,
// with Pair.I indexing into a and Pair.J into b. Both collections must share
// one label table. Like SelfJoin, it is the uncancellable materialising form
// of StreamJoin and panics on a negative threshold.
func (job Job) Join(a, b []*tree.Tree) ([]sim.Pair, *sim.Stats) {
	return job.collect(context.Background(), combined(a, b), len(a))
}

// StreamSelf runs the job over one collection, handing each result pair to
// sink as the pipeline confirms it — no materialised result slice, no
// ordering guarantee (use SelfJoin or sort afterwards for the canonical
// order). A sink returning false stops the run early; that is not an error.
// Cancelling ctx aborts the run promptly and returns ctx's error together
// with the statistics accumulated so far.
func (job Job) StreamSelf(ctx context.Context, ts []*tree.Tree, sink sim.EmitFunc) (*sim.Stats, error) {
	return job.stream(ctx, ts, -1, sink)
}

// StreamJoin is StreamSelf for a cross join of two collections; Pair.I
// indexes into a and Pair.J into b.
func (job Job) StreamJoin(ctx context.Context, a, b []*tree.Tree, sink sim.EmitFunc) (*sim.Stats, error) {
	return job.stream(ctx, combined(a, b), len(a), sink)
}

func combined(a, b []*tree.Tree) []*tree.Tree {
	ts := make([]*tree.Tree, 0, len(a)+len(b))
	ts = append(ts, a...)
	ts = append(ts, b...)
	return ts
}

// collect materialises a stream into the canonical sorted slice; validation
// failures panic (the legacy contract of the free functions).
func (job Job) collect(ctx context.Context, ts []*tree.Tree, split int) ([]sim.Pair, *sim.Stats) {
	var results []sim.Pair
	stats, err := job.stream(ctx, ts, split, func(p sim.Pair) bool {
		results = append(results, p)
		return true
	})
	if err != nil {
		panic(err)
	}
	sim.SortPairs(results)
	return results, stats
}

func (job Job) stream(outer context.Context, ts []*tree.Tree, split int, sink sim.EmitFunc) (*sim.Stats, error) {
	stats := &sim.Stats{Trees: len(ts)}
	if job.Tau < 0 {
		return stats, fmt.Errorf("engine: negative threshold %d", job.Tau)
	}
	// The run context is cancelled either from outside or by the emitter
	// when the sink stops the stream; sources poll it between probes.
	ctx, cancel := context.WithCancel(outer)
	defer cancel()
	source := job.Source
	if source == nil {
		source = SortedLoop()
	}
	stats.Plan = job.Plan
	em := &emitter{sink: sink, split: split, cancel: cancel}
	c := newCollection(ctx, ts, split, job.Tau, job.Workers, job.Cache, job.DynTokens)
	c.PrefixC = job.PrefixC

	// Prepare the filter chain once over the combined collection; stage
	// preparation time is candidate-generation effort. One stage's
	// preparation is the engine's largest uncancellable unit (a cold
	// corpus computes every tree's signature here), so check the context
	// between stages rather than starting work the caller abandoned.
	start := time.Now()
	preds := make([]func(i, j int) bool, len(job.Filters))
	for k, f := range job.Filters {
		if err := outer.Err(); err != nil {
			stats.CandTime += time.Since(start)
			stats.CandWall += time.Since(start)
			return stats, err
		}
		preds[k] = f.Prepare(c)
	}
	stats.CandTime += time.Since(start)
	stats.CandWall += time.Since(start)

	verifier := job.Verifier
	if verifier == nil && job.VerifierFor != nil {
		verifier = job.VerifierFor(c)
	}
	var vfactory sim.BatchVerifierFactory
	if verifier != nil {
		// A custom verifier (a test's instrumentation, the unbanded
		// ablation) runs through the same batched stage, adapted statelessly.
		vfactory = sim.AdaptVerifier(ts, verifier)
	} else {
		// The arena views are τ-independent per-tree signatures like any
		// filter's: compute (or warm-hit) every tree's now, so the corpus
		// contract — a later join recomputes no per-tree signature — covers
		// the verifier too, and per-candidate lookups stay lock-free. Like a
		// filter stage's preparation, this is an uncancellable unit — check
		// the context first rather than starting work the caller abandoned.
		if err := outer.Err(); err != nil {
			return stats, err
		}
		vstart := time.Now()
		vfactory = NewArenaVerifiers(ts, c.cache, c.counters)
		stats.VerifyTime += time.Since(vstart)
	}
	flushAt := 0
	if c.Workers <= 1 {
		flushAt = inlineFlushChunk
	}
	stats.Source = source.Name()
	tasks := source.Tasks(c, job.Shards)
	if job.Shards > 1 && len(tasks) > 1 {
		// Sources' natural decompositions (the sorted loop's strides, the
		// cross-join plan) offer every pair exactly once by construction, so
		// streaming stays constant-memory. Only an explicitly sharded
		// fragment-and-replicate plan gets the dedup map, defending against
		// aliased trees straddling a shard boundary (see core's sharded
		// plan).
		em.seen = make(map[[2]int]bool)
	}
	pipes := make([]*Pipeline, len(tasks))
	for i := range pipes {
		px := &Pipeline{
			c:        c,
			preds:    preds,
			counts:   make([]sim.StageStats, len(job.Filters)),
			flushAt:  flushAt,
			vfactory: vfactory,
			em:       em,
		}
		for k, f := range job.Filters {
			px.counts[k].Name = f.Name()
		}
		pipes[i] = px
	}
	tasksStart := time.Now()
	runTasks(tasks, pipes, c.Workers)
	tasksWall := time.Since(tasksStart)

	// Merge task-local candidates and statistics. Stage counters merge by
	// position: every pipeline carries the same chain. Inline verification
	// ran inside the sources' timed loops, so its elapsed time moves from
	// the candidate-generation clock to the verification clock (where
	// VerifyStream already recorded it) — and is carved out of the stage's
	// wall clock the same way.
	stats.Stages = make([]sim.StageStats, len(job.Filters))
	for k, f := range job.Filters {
		stats.Stages[k].Name = f.Name()
	}
	var cands []sim.Candidate
	var inline time.Duration
	for _, px := range pipes {
		cands = append(cands, px.cands...)
		px.stats.CandTime -= px.inlineTime
		inline += px.inlineTime
		mergeStats(stats, &px.stats)
		for k := range px.counts {
			stats.Stages[k].In += px.counts[k].In
			stats.Stages[k].Pruned += px.counts[k].Pruned
			stats.Stages[k].SampledNs += px.counts[k].SampledNs
			stats.Stages[k].Sampled += px.counts[k].Sampled
		}
		if px.bv != nil {
			px.bv.Close()
		}
	}
	stats.CandWall += tasksWall - inline
	sim.VerifyStreamBatched(ctx, cands, job.Tau, vfactory, c.Workers, stats, em.emit)
	stats.Results = em.n
	stats.DPAvoided += c.counters.DPAvoided.Load()
	stats.KeyrootsSkipped += c.counters.KeyrootsSkipped.Load()
	stats.BandAborts += c.counters.BandAborts.Load()
	stats.StrategyLeft += c.counters.StrategyLeft.Load()
	stats.StrategyRight += c.counters.StrategyRight.Load()
	if err := outer.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// inlineFlushChunk is the candidate-buffer bound of sequential jobs: large
// enough to amortise the per-batch clock reads, small enough that a
// paper-scale join never holds more than a sliver of its candidates.
const inlineFlushChunk = 4096

// runTasks executes the tasks on a pool of at most workers goroutines; one
// task (or one worker) runs inline.
func runTasks(tasks []Task, pipes []*Pipeline, workers int) {
	if len(tasks) == 0 {
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 || len(tasks) == 1 {
		for i, t := range tasks {
			t(pipes[i])
		}
		return
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(tasks) {
					return
				}
				tasks[i](pipes[i])
			}
		}()
	}
	wg.Wait()
}

// mergeStats folds one task's counters into the join totals. Times are
// summed across tasks (CPU effort, as the sharded plan always reported), so
// parallel speedups show up in Stats.CandWall, not here.
func mergeStats(total, st *sim.Stats) {
	total.CandTime += st.CandTime
	total.PartitionTime += st.PartitionTime
	total.IndexedSubgraphs += st.IndexedSubgraphs
	total.SubgraphProbes += st.SubgraphProbes
	total.MatchTests += st.MatchTests
	total.MatchHits += st.MatchHits
	total.SmallTreeFallback += st.SmallTreeFallback
	total.IndexBuildTime += st.IndexBuildTime
	total.PostingsScanned += st.PostingsScanned
	total.SkippedByCount += st.SkippedByCount
	total.PostingsTombstoned += st.PostingsTombstoned
	if st.Source != "" {
		// A task reported the source that effectively ran (the token index
		// stamping its sorted-loop fallback); it overrides the configured one.
		total.Source = st.Source
	}
}
