package engine_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"treejoin/internal/baseline"
	"treejoin/internal/engine"
	"treejoin/internal/pqgram"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// tokenizers under test: the two real implementations the methods wire in.
func testTokenizers() []engine.Tokenizer {
	return []engine.Tokenizer{baseline.LabelTokenizer(), pqgram.Tokenizer(0)}
}

// mixedCorpus is a synthetic collection large enough to engage the index,
// with a handful of tiny trees appended so the light-tree path runs too.
func mixedCorpus(n int, seed int64) []*tree.Tree {
	ts := synth.Synthetic(n, seed)
	lt := ts[0].Labels
	for _, s := range []string{"{a}", "{b}", "{a{b}}", "{a{b}{c}}", "{x{y{z}}}"} {
		ts = append(ts, tree.MustParseBracket(s, lt))
	}
	return ts
}

// TestTokenIndexOracle: the token-index source produces exactly the sorted
// loop's result set — self and cross joins, every tokenizer, thresholds from
// exact matching through bag-saturating — and never more post-filter
// candidates.
func TestTokenIndexOracle(t *testing.T) {
	ts := mixedCorpus(60, 11)
	filter := baseline.HISTFilter()
	for _, tz := range testTokenizers() {
		for _, tau := range []int{0, 1, 2, 4, 8} {
			loopJob := engine.Job{Tau: tau, Filters: []engine.PairFilter{filter}}
			idxJob := engine.Job{Tau: tau, Filters: []engine.PairFilter{filter}, Source: engine.TokenIndex(tz)}
			want, wst := loopJob.SelfJoin(ts)
			got, gst := idxJob.SelfJoin(ts)
			label := fmt.Sprintf("self %s τ=%d", tz.Name(), tau)
			equalPairs(t, label, got, want)
			if gst.Candidates > wst.Candidates {
				t.Fatalf("%s: index fed %d candidates, loop %d", label, gst.Candidates, wst.Candidates)
			}
			a, b := ts[:25], ts[25:]
			want, wst = loopJob.Join(a, b)
			got, gst = idxJob.Join(a, b)
			label = fmt.Sprintf("cross %s τ=%d", tz.Name(), tau)
			equalPairs(t, label, got, want)
			if gst.Candidates > wst.Candidates {
				t.Fatalf("%s: index fed %d candidates, loop %d", label, gst.Candidates, wst.Candidates)
			}
		}
	}
}

// TestTokenIndexFallback: tiny collections and bag-swallowing thresholds
// must run the sorted loop, and Stats.Source must say so; a regular workload
// must report the token index.
func TestTokenIndexFallback(t *testing.T) {
	tz := baseline.LabelTokenizer()
	small := synth.Synthetic(engine.TokenIndexMinTrees-1, 3)
	_, st := (engine.Job{Tau: 1, Source: engine.TokenIndex(tz)}).SelfJoin(small)
	if st.Source != "sorted-loop" {
		t.Fatalf("small corpus source = %q, want sorted-loop", st.Source)
	}

	big := synth.Synthetic(80, 3)
	maxSize := 0
	for _, tr := range big {
		if tr.Size() > maxSize {
			maxSize = tr.Size()
		}
	}
	_, st = (engine.Job{Tau: maxSize, Source: engine.TokenIndex(tz)}).SelfJoin(big)
	if st.Source != "sorted-loop" {
		t.Fatalf("τ=maxSize source = %q, want sorted-loop", st.Source)
	}

	_, st = (engine.Job{Tau: 1, Source: engine.TokenIndex(tz)}).SelfJoin(big)
	if !strings.HasPrefix(st.Source, "token-index(") {
		t.Fatalf("regular corpus source = %q, want token-index(...)", st.Source)
	}
	if st.IndexBuildTime <= 0 {
		t.Fatal("token-index run recorded no IndexBuildTime")
	}
}

// TestWorkersNormalized: worker counts below 1 become GOMAXPROCS everywhere
// tasks are dealt — the collection view a source sees — and explicit counts
// pass through.
func TestWorkersNormalized(t *testing.T) {
	ts := synth.Synthetic(10, 5)
	for _, tc := range []struct{ in, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{-3, runtime.GOMAXPROCS(0)},
		{1, 1},
		{4, 4},
	} {
		var seen int
		src := captureSource{onTasks: func(c *engine.Collection) { seen = c.Workers }}
		(engine.Job{Tau: 1, Workers: tc.in, Source: src}).SelfJoin(ts)
		if seen != tc.want {
			t.Fatalf("Workers=%d: collection saw %d workers, want %d", tc.in, seen, tc.want)
		}
	}
	if got := sim.NormalizeWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NormalizeWorkers(0) = %d", got)
	}
	if got := sim.NormalizeWorkers(7); got != 7 {
		t.Fatalf("NormalizeWorkers(7) = %d", got)
	}
}

// captureSource records the collection it was asked to decompose and offers
// nothing.
type captureSource struct{ onTasks func(c *engine.Collection) }

func (s captureSource) Name() string { return "capture" }
func (s captureSource) Tasks(c *engine.Collection, shards int) []engine.Task {
	s.onTasks(c)
	return nil
}

// TestTokenIndexRace: the probe/insert machinery under concurrent joins
// sharing one artifact cache — racing bag builds, racing light scans, self
// and cross probes at once. Run with -race.
func TestTokenIndexRace(t *testing.T) {
	ts := mixedCorpus(60, 17)
	cache := engine.NewCache()
	want, _ := (engine.Job{Tau: 2, Filters: []engine.PairFilter{baseline.HISTFilter()}}).SelfJoin(ts)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			tz := testTokenizers()[g%2]
			job := engine.Job{
				Tau:     2,
				Filters: []engine.PairFilter{baseline.HISTFilter()},
				Source:  engine.TokenIndex(tz),
				Cache:   cache,
				Workers: 2,
			}
			if g%3 == 0 {
				a, b := ts[:30], ts[30:]
				job.Join(a, b)
				return
			}
			got, _ := job.SelfJoin(ts)
			if len(got) != len(want) {
				t.Errorf("goroutine %d: %d pairs, want %d", g, len(got), len(want))
			}
		}()
	}
	wg.Wait()
}
