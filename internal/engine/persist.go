package engine

import (
	"sort"
	"strings"

	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// Persistence hooks for the artifact cache. The segment store serialises the
// τ-independent token bags a corpus has paid for (so a reopened corpus joins
// without re-tokenising anything) and seeds them back on open. The bag type
// itself stays unexported — these hooks translate between tokenBag and the
// neutral BagEntry wire form at the cache boundary.

// BagEntry is one distinct token of a serialised bag with its multiplicity.
// Entries of a bag are sorted ascending by Key with Count ≥ 1 — exactly the
// invariant buildBag establishes — and SeedBag trusts it, so decoders must
// validate before seeding.
type BagEntry struct {
	Key   uint64
	Count int32
}

// BagKinds lists the token-bag artifact kinds currently populated in c,
// sorted, e.g. ["tokidx/euler-grams/q=1", "tokidx/labels"]. Routed caches
// store nothing locally and report none.
func BagKinds(c *Cache) []string {
	if c == nil || c.route != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var kinds []string
	for key, byTree := range c.m {
		if strings.HasPrefix(key, "tokidx/") && len(byTree) > 0 {
			kinds = append(kinds, key)
		}
	}
	sort.Strings(kinds)
	return kinds
}

// ExportBags returns the bags of ts under the given kind, ready to
// serialise. With tz non-nil (its tokenBagKey must equal kind), missing bags
// are built — and cached — so the export always covers every tree; with a
// nil tz the export is cache-only and ok reports whether every tree had a
// cached bag.
func ExportBags(c *Cache, kind string, tz Tokenizer, ts []*tree.Tree) (bags [][]BagEntry, ok bool) {
	if tz != nil && tokenBagKey(tz) != kind {
		panic("engine: ExportBags tokenizer does not match kind " + kind)
	}
	bags = make([][]BagEntry, len(ts))
	ok = true
	for i, t := range ts {
		var b *tokenBag
		if v, hit := c.Lookup(kind, t); hit {
			b = v.(*tokenBag)
		} else if tz != nil {
			b = buildBag(tz, t)
			c.Store(kind, t, b)
		} else {
			ok = false
			continue
		}
		out := make([]BagEntry, len(b.toks))
		for j, tc := range b.toks {
			out[j] = BagEntry{Key: tc.key, Count: tc.count}
		}
		bags[i] = out
	}
	return bags, ok
}

// SeedBag stores a decoded bag for (kind, t), reconstructing the cached form
// (total = Σ counts). The entries must satisfy the BagEntry invariant; a
// seeded bag is indistinguishable from one buildBag computed.
func SeedBag(c *Cache, kind string, t *tree.Tree, entries []BagEntry) {
	b := &tokenBag{toks: make([]tokenCount, len(entries))}
	for i, e := range entries {
		b.toks[i] = tokenCount{key: e.Key, count: e.Count}
		b.total += e.Count
	}
	c.Store(kind, t, b)
}

// SeedView stores a decoded arena view for t under ArenaKey, so a reopened
// corpus verifies out of the segment-backed arenas instead of rebuilding
// them. v must be t's view (v.T == t), already validated by the decoder.
func SeedView(c *Cache, t *tree.Tree, v *ted.TreeView) {
	c.Store(ArenaKey, t, v)
}
