package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"treejoin/internal/tree"
)

// persistTestTrees builds a few small random trees over one label table.
func persistTestTrees(n int) []*tree.Tree {
	rng := rand.New(rand.NewSource(61))
	lt := tree.NewLabelTable()
	labels := []string{"a", "b", "c", "d"}
	ts := make([]*tree.Tree, n)
	for i := range ts {
		b := tree.NewBuilder(lt)
		root := b.Root(labels[rng.Intn(len(labels))])
		ids := []int32{root}
		for k := 1 + rng.Intn(12); k > 0; k-- {
			p := ids[rng.Intn(len(ids))]
			ids = append(ids, b.Child(p, labels[rng.Intn(len(labels))]))
		}
		ts[i] = b.MustBuild()
	}
	return ts
}

func persistTokenizer() Tokenizer {
	return NewTokenizer("test-labels", 2, func(t *tree.Tree) []uint64 {
		out := make([]uint64, 0, t.Size())
		for i := range t.Nodes {
			out = append(out, uint64(t.Nodes[i].Label))
		}
		return out
	})
}

// TestExportSeedBagRoundTrip: bags exported from one cache and seeded into a
// fresh one are indistinguishable — same sorted entries, same totals, and the
// seeded cache serves them as hits (no rebuild).
func TestExportSeedBagRoundTrip(t *testing.T) {
	ts := persistTestTrees(10)
	tz := persistTokenizer()
	kind := tokenBagKey(tz)

	src := NewCache()
	// Cache-only export over a cold cache reports incomplete coverage.
	if _, ok := ExportBags(src, kind, nil, ts); ok {
		t.Fatalf("cache-only export over a cold cache reported ok")
	}
	bags, ok := ExportBags(src, kind, tz, ts)
	if !ok {
		t.Fatalf("building export not ok")
	}
	for i, entries := range bags {
		want := buildBag(tz, ts[i])
		if len(entries) != len(want.toks) {
			t.Fatalf("tree %d: %d entries, want %d", i, len(entries), len(want.toks))
		}
		var total int32
		for j, e := range entries {
			if e.Key != want.toks[j].key || e.Count != want.toks[j].count {
				t.Fatalf("tree %d entry %d: (%d,%d), want (%d,%d)",
					i, j, e.Key, e.Count, want.toks[j].key, want.toks[j].count)
			}
			if j > 0 && entries[j-1].Key >= e.Key {
				t.Fatalf("tree %d: entries not strictly ascending at %d", i, j)
			}
			total += e.Count
		}
		if total != want.total {
			t.Fatalf("tree %d: total %d, want %d", i, total, want.total)
		}
	}
	// The building export populated the cache: a cache-only export now covers.
	if _, ok := ExportBags(src, kind, nil, ts); !ok {
		t.Fatalf("cache-only export after build not ok")
	}

	dst := NewCache()
	for i, entries := range bags {
		SeedBag(dst, kind, ts[i], entries)
	}
	if got := dst.KindEntries(kind); got != len(ts) {
		t.Fatalf("seeded cache has %d entries, want %d", got, len(ts))
	}
	misses := dst.Stats().Misses
	reread, ok := ExportBags(dst, kind, nil, ts)
	if !ok || !reflect.DeepEqual(reread, bags) {
		t.Fatalf("re-export of seeded bags differs (ok=%v)", ok)
	}
	if dst.Stats().Misses != misses {
		t.Fatalf("seeded cache missed on lookup")
	}
}

// TestBagKinds: only populated tokidx/ kinds are listed, sorted; other
// artifact kinds and routed caches report nothing.
func TestBagKinds(t *testing.T) {
	ts := persistTestTrees(3)
	c := NewCache()
	if got := BagKinds(c); got != nil {
		t.Fatalf("empty cache kinds = %v", got)
	}
	c.Store("ted/arena", ts[0], struct{}{})
	c.Store("tokidx/zzz", ts[0], &tokenBag{})
	c.Store("tokidx/aaa", ts[1], &tokenBag{})
	got := BagKinds(c)
	want := []string{"tokidx/aaa", "tokidx/zzz"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	routed := RoutedCache(func(*tree.Tree) *Cache { return c })
	if got := BagKinds(routed); got != nil {
		t.Fatalf("routed cache kinds = %v", got)
	}
}
