package engine_test

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"treejoin/internal/engine"
	"treejoin/internal/tree"
)

// dynJob wires a Job whose token-index source probes snap instead of
// building a per-run index, mirroring what a dynamic corpus does.
func dynJob(tz engine.Tokenizer, snap *engine.TokenSnap, tau int) engine.Job {
	return engine.Job{
		Tau:       tau,
		Source:    engine.TokenIndex(tz),
		DynTokens: func(engine.Tokenizer) *engine.TokenSnap { return snap },
	}
}

// TestDynTokenSnapOracle: probing a persistent snapshot produces exactly the
// sorted loop's result set — every tokenizer, thresholds from exact matching
// through bag-saturating, light trees included — and Stats reports the
// dynamic source.
func TestDynTokenSnapOracle(t *testing.T) {
	ts := mixedCorpus(60, 7)
	for _, tz := range testTokenizers() {
		snap := engine.NewTokenSnap(tz, ts, nil)
		for _, tau := range []int{0, 1, 2, 4, 8} {
			want, _ := (engine.Job{Tau: tau}).SelfJoin(ts)
			got, st := dynJob(tz, snap, tau).SelfJoin(ts)
			label := fmt.Sprintf("%s τ=%d", tz.Name(), tau)
			equalPairs(t, label, got, want)
			if !strings.HasPrefix(st.Source, "dyn-token-index(") {
				t.Fatalf("%s: source = %q, want dyn-token-index", label, st.Source)
			}
		}
	}
}

// TestDynTokenSnapMutations: a snapshot maintained by WithAdded/WithRemoved
// answers every join exactly like an index freshly built over the survivors,
// tombstoned postings are counted and skipped, and an old generation keeps
// answering for its own membership (immutability under later mutations).
func TestDynTokenSnapMutations(t *testing.T) {
	pool := mixedCorpus(80, 13)
	for _, tz := range testTokenizers() {
		live := slices.Clone(pool[:60])
		snap := engine.NewTokenSnap(tz, live, nil)
		frozenLive := slices.Clone(live)
		frozen := snap

		step := 0
		apply := func(removePos []int, add []*tree.Tree) {
			step++
			if len(removePos) > 0 {
				snap = snap.WithRemoved(removePos)
				slices.Sort(removePos)
				for i := len(removePos) - 1; i >= 0; i-- {
					live = slices.Delete(live, removePos[i], removePos[i]+1)
				}
			}
			if len(add) > 0 {
				snap = snap.WithAdded(add, nil)
				live = append(live, add...)
			}
			if snap.Live() != len(live) {
				t.Fatalf("%s step %d: snap.Live() = %d, want %d", tz.Name(), step, snap.Live(), len(live))
			}
			for _, tau := range []int{0, 1, 2, 4} {
				want, _ := (engine.Job{Tau: tau}).SelfJoin(live)
				got, st := dynJob(tz, snap, tau).SelfJoin(live)
				label := fmt.Sprintf("%s step %d τ=%d", tz.Name(), step, tau)
				equalPairs(t, label, got, want)
				if !strings.HasPrefix(st.Source, "dyn-token-index(") {
					t.Fatalf("%s: source = %q, want dyn-token-index", label, st.Source)
				}
				if snap.Tombstones() > 0 && tau > 0 && st.PostingsTombstoned == 0 {
					// With tombstones present, a probing join generally
					// crosses some of them; assert the counter is wired at
					// least once per tokenizer.
					t.Logf("%s: no tombstoned postings crossed (ok, but unusual)", label)
				}
			}
		}

		apply([]int{3, 17, 40, 55}, nil)       // plain removals
		apply(nil, pool[60:70])                // appends extend the lists
		apply([]int{0, 1, 2, 5, 9}, pool[70:]) // mixed batch

		// The frozen first generation still answers for its own membership.
		want, _ := (engine.Job{Tau: 2}).SelfJoin(frozenLive)
		got, _ := dynJob(tz, frozen, 2).SelfJoin(frozenLive)
		equalPairs(t, tz.Name()+" frozen generation", got, want)
		if frozen.Tombstones() != 0 || frozen.Live() != len(frozenLive) {
			t.Fatalf("%s: frozen generation mutated: live=%d tombstones=%d", tz.Name(), frozen.Live(), frozen.Tombstones())
		}
	}
}

// TestDynTokenSnapCompaction: removing most of the collection pushes the
// tombstoned share past the ratio, the lists compact (no tombstones
// remain), and the compacted generation still produces the oracle results.
func TestDynTokenSnapCompaction(t *testing.T) {
	pool := mixedCorpus(100, 29)
	for _, tz := range testTokenizers() {
		live := slices.Clone(pool)
		snap := engine.NewTokenSnap(tz, live, nil)
		removePos := make([]int, 0, 60)
		for p := 0; p < 60; p++ {
			removePos = append(removePos, p)
		}
		snap = snap.WithRemoved(removePos)
		live = slices.Clone(live[60:])
		if snap.Compactions() == 0 {
			t.Fatalf("%s: removing 60/100 trees did not compact", tz.Name())
		}
		if snap.Tombstones() != 0 {
			t.Fatalf("%s: %d tombstones survived compaction", tz.Name(), snap.Tombstones())
		}
		if _, dead := snap.Postings(); dead != 0 {
			t.Fatalf("%s: %d dead postings survived compaction", tz.Name(), dead)
		}
		for _, tau := range []int{0, 2} {
			want, _ := (engine.Job{Tau: tau}).SelfJoin(live)
			got, st := dynJob(tz, snap, tau).SelfJoin(live)
			equalPairs(t, fmt.Sprintf("%s compacted τ=%d", tz.Name(), tau), got, want)
			if st.PostingsTombstoned != 0 {
				t.Fatalf("%s: compacted probe crossed %d tombstones", tz.Name(), st.PostingsTombstoned)
			}
		}
	}
}

// TestDynTokenSnapCoverage: a snapshot that does not cover the run's
// collection — wrong trees, wrong order, or a cross join — must be ignored
// in favor of the per-run paths, leaving results correct and the source
// honest.
func TestDynTokenSnapCoverage(t *testing.T) {
	ts := mixedCorpus(60, 31)
	tz := testTokenizers()[0]
	stale := engine.NewTokenSnap(tz, ts[:59], nil)
	want, _ := (engine.Job{Tau: 2}).SelfJoin(ts)
	got, st := dynJob(tz, stale, 2).SelfJoin(ts)
	equalPairs(t, "stale snapshot", got, want)
	if strings.HasPrefix(st.Source, "dyn-") {
		t.Fatalf("stale snapshot was probed: source = %q", st.Source)
	}

	reordered := slices.Clone(ts)
	reordered[0], reordered[1] = reordered[1], reordered[0]
	shuffled := engine.NewTokenSnap(tz, reordered, nil)
	got, st = dynJob(tz, shuffled, 2).SelfJoin(ts)
	equalPairs(t, "reordered snapshot", got, want)
	if strings.HasPrefix(st.Source, "dyn-") {
		t.Fatalf("reordered snapshot was probed: source = %q", st.Source)
	}

	// Cross joins never probe a dynamic snapshot (it has no side split).
	a, b := ts[:30], ts[30:]
	crossWant, _ := (engine.Job{Tau: 2}).Join(a, b)
	full := engine.NewTokenSnap(tz, append(slices.Clone(a), b...), nil)
	crossGot, cst := dynJob(tz, full, 2).Join(a, b)
	equalPairs(t, "cross join", crossGot, crossWant)
	if strings.HasPrefix(cst.Source, "dyn-") {
		t.Fatalf("cross join probed a dynamic snapshot: source = %q", cst.Source)
	}
}
