package engine

import (
	"maps"
	"sort"
	"time"

	"treejoin/internal/tree"
)

// The persistent token inverted index behind dynamic corpora. The per-run
// TokenIndexSource (tokenindex.go) rebuilds its prefix index on every join —
// the right trade for a static collection joined a handful of times, the
// wrong one for a corpus that mutates and re-joins continuously. A TokenSnap
// amortises that build across joins: the full token bag of every live tree
// is posted once, appends extend the posting lists, removals tombstone their
// slots, and compaction rewrites the lists only when tombstones exceed a
// ratio of the postings.
//
// Because full bags are indexed (not τ-dependent prefixes), one snapshot
// serves every threshold and every method sharing the tokenizer. Probing
// flips the per-run source's asymmetry: there the probe walks its whole bag
// against prefix postings; here the probe walks a rare-first prefix of its
// own bag — any Cτ+1 expanded elements of the larger bag must contain a
// token the partner matches (≤ Cτ elements can go unmatched within τ), and
// every matched token carries the partner in its full posting list. The
// count threshold degenerates to ≥ 1 under this orientation, so the filter
// chain does proportionally more of the pruning; the probe picks the tokens
// with the shortest current posting lists (document frequency is read off
// len(list) for free) to keep the walk short.
//
// A TokenSnap is immutable: WithAdded, WithRemoved, and compaction return a
// new snapshot sharing unmodified posting lists with the old one. Readers
// (in-flight joins) therefore never observe a mutation — the copy-on-write
// discipline the dynamic Corpus's epoch snapshots are built from. Soundness
// of the tombstone scheme is argued in DESIGN.md, "Dynamic corpora".

// tokenCompactMinDead is the tombstone floor below which compaction never
// runs: rewriting the lists for a handful of dead postings costs more than
// skipping them ever will.
const tokenCompactMinDead = 64

// dynPosting records that a slot's bag contains count occurrences of a
// token. Lists grow in slot order (slots are assigned in insertion order and
// survive until compaction), so a list is ascending in slot.
type dynPosting struct {
	slot  int32
	count int32
}

// TokenSnap is one immutable generation of the persistent token index: the
// live trees (by stable slot), their bags and sizes, the full-bag posting
// lists, and the tombstone state. Mutations return new snapshots; probing
// never blocks a writer and a writer never disturbs a reader.
type TokenSnap struct {
	tz    Tokenizer
	trees []*tree.Tree // by slot; nil once tombstoned
	sizes []int32      // by slot (kept for dead slots: probes filter by size before liveness)
	bags  []*tokenBag  // by slot; nil once tombstoned
	dead  []bool       // tombstones by slot
	nDead int

	// posToSlot maps collection position -> slot: the live slots in
	// insertion order. It is the contract with the corpus — position i of
	// the collection the corpus runs a join over is trees[posToSlot[i]] —
	// and it stays monotone (slots are assigned in insertion order and
	// removals only delete entries), so slot order is position order.
	posToSlot []int32

	post   map[uint64][]dynPosting
	bySize []int32 // live slots sorted by (size, slot), for light-probe window scans

	livePostings int
	deadPostings int
	compactions  int64
}

// NewTokenSnap builds the first generation over ts (which become positions
// 0..len-1). Bags are drawn through cache when non-nil, so a corpus that has
// already joined pays no re-tokenisation.
func NewTokenSnap(tz Tokenizer, ts []*tree.Tree, cache *Cache) *TokenSnap {
	s := &TokenSnap{tz: tz, post: make(map[uint64][]dynPosting, 1<<10)}
	s.appendTrees(ts, cache, nil)
	s.rebuildBySize()
	return s
}

// Tokenizer returns the tokenisation the snapshot indexes.
func (s *TokenSnap) Tokenizer() Tokenizer { return s.tz }

// Live returns the number of live (non-tombstoned) trees.
func (s *TokenSnap) Live() int { return len(s.posToSlot) }

// Tombstones returns the number of tombstoned slots awaiting compaction.
func (s *TokenSnap) Tombstones() int { return s.nDead }

// Postings returns the live and tombstoned posting counts; compaction fires
// when the tombstoned share exceeds half, never below tokenCompactMinDead.
func (s *TokenSnap) Postings() (live, tombstoned int) { return s.livePostings, s.deadPostings }

// Compactions returns how many times this snapshot's lineage has rewritten
// its posting lists to drop tombstones.
func (s *TokenSnap) Compactions() int64 { return s.compactions }

// WithAdded returns a new generation with ts appended (they become the
// highest positions, in order). Shared posting lists are copied only for the
// tokens the new trees carry.
func (s *TokenSnap) WithAdded(ts []*tree.Tree, cache *Cache) *TokenSnap {
	if len(ts) == 0 {
		return s
	}
	n := s.clone(true)
	n.appendTrees(ts, cache, make(map[uint64]bool))
	n.rebuildBySize()
	return n
}

// WithRemoved returns a new generation with the trees at the given
// collection positions tombstoned (positions index the snapshot's own live
// order, i.e. the corpus state it was built for). Postings stay in place —
// probes skip dead slots — until the tombstoned share crosses the
// compaction ratio, at which point the lists are rebuilt from exactly the
// live slots' full bags (so compaction can never drop a live posting; see
// DESIGN.md). Out-of-range positions are ignored.
func (s *TokenSnap) WithRemoved(positions []int) *TokenSnap {
	if len(positions) == 0 {
		return s
	}
	// Tombstoning touches no posting list, so the map (and every list in
	// it) is shared with the parent generation outright — a removal batch
	// costs O(slots), not O(distinct tokens).
	n := s.clone(false)
	gone := make(map[int32]bool, len(positions))
	for _, p := range positions {
		if p < 0 || p >= len(n.posToSlot) {
			continue
		}
		slot := n.posToSlot[p]
		if n.dead[slot] {
			continue
		}
		n.dead[slot] = true
		n.nDead++
		toks := len(n.bags[slot].toks)
		n.livePostings -= toks
		n.deadPostings += toks
		n.trees[slot] = nil
		n.bags[slot] = nil
		gone[slot] = true
	}
	if len(gone) == 0 {
		return s
	}
	kept := n.posToSlot[:0]
	for _, slot := range n.posToSlot {
		if !gone[slot] {
			kept = append(kept, slot)
		}
	}
	n.posToSlot = kept
	if n.deadPostings >= tokenCompactMinDead && n.deadPostings > n.livePostings {
		return n.compacted()
	}
	n.rebuildBySize()
	return n
}

// clone copies the mutable state into fresh backing arrays so the new
// generation can be edited without disturbing readers of the old one.
// Posting lists are always shared (appendTrees and compaction copy the ones
// they touch); the map itself is cloned only when the caller will modify it
// (clonePost) — a tombstoning generation shares it verbatim.
func (s *TokenSnap) clone(clonePost bool) *TokenSnap {
	post := s.post
	if clonePost {
		post = maps.Clone(post)
	}
	n := &TokenSnap{
		tz:           s.tz,
		trees:        append(make([]*tree.Tree, 0, len(s.trees)+1), s.trees...),
		sizes:        append(make([]int32, 0, len(s.sizes)+1), s.sizes...),
		bags:         append(make([]*tokenBag, 0, len(s.bags)+1), s.bags...),
		dead:         append(make([]bool, 0, len(s.dead)+1), s.dead...),
		nDead:        s.nDead,
		posToSlot:    append(make([]int32, 0, len(s.posToSlot)+1), s.posToSlot...),
		post:         post,
		livePostings: s.livePostings,
		deadPostings: s.deadPostings,
		compactions:  s.compactions,
	}
	return n
}

// appendTrees assigns the next slots to ts and posts their full bags. fresh
// tracks which posting lists this generation already owns (nil on the first
// generation, whose lists are all its own).
func (s *TokenSnap) appendTrees(ts []*tree.Tree, cache *Cache, fresh map[uint64]bool) {
	tz := s.tz
	bags := Cached(cache, tokenBagKey(tz), ts, func(t *tree.Tree) *tokenBag {
		return buildBag(tz, t)
	})
	for i, t := range ts {
		slot := int32(len(s.trees))
		bag := bags[i]
		s.trees = append(s.trees, t)
		s.sizes = append(s.sizes, int32(t.Size()))
		s.bags = append(s.bags, bag)
		s.dead = append(s.dead, false)
		s.posToSlot = append(s.posToSlot, slot)
		for _, tc := range bag.toks {
			list := s.post[tc.key]
			if fresh != nil && !fresh[tc.key] {
				// First touch of a shared list in this generation: copy it
				// so readers of the parent snapshot keep theirs intact.
				copied := make([]dynPosting, len(list), len(list)+1)
				copy(copied, list)
				list = copied
				fresh[tc.key] = true
			}
			s.post[tc.key] = append(list, dynPosting{slot: slot, count: tc.count})
			s.livePostings++
		}
	}
}

// compacted rebuilds a dense generation from the live slots, in position
// order, dropping every tombstone. The bags are reused — no tree is
// re-tokenised — and every live slot's full bag is re-posted, which is the
// soundness argument: the rebuilt index is NewTokenSnap of the survivors.
func (s *TokenSnap) compacted() *TokenSnap {
	n := &TokenSnap{
		tz:          s.tz,
		post:        make(map[uint64][]dynPosting, len(s.post)),
		compactions: s.compactions + 1,
	}
	for _, slot := range s.posToSlot {
		nslot := int32(len(n.trees))
		bag := s.bags[slot]
		n.trees = append(n.trees, s.trees[slot])
		n.sizes = append(n.sizes, s.sizes[slot])
		n.bags = append(n.bags, bag)
		n.dead = append(n.dead, false)
		n.posToSlot = append(n.posToSlot, nslot)
		for _, tc := range bag.toks {
			n.post[tc.key] = append(n.post[tc.key], dynPosting{slot: nslot, count: tc.count})
			n.livePostings++
		}
	}
	n.rebuildBySize()
	return n
}

// rebuildBySize re-sorts the live slots by (size, slot) for the light
// probe's window scans. O(n log n) per mutation batch — noise next to the
// posting work at corpus scale.
func (s *TokenSnap) rebuildBySize() {
	s.bySize = s.bySize[:0]
	s.bySize = append(s.bySize, s.posToSlot...)
	sort.Slice(s.bySize, func(a, b int) bool {
		sa, sb := s.bySize[a], s.bySize[b]
		if s.sizes[sa] != s.sizes[sb] {
			return s.sizes[sa] < s.sizes[sb]
		}
		return sa < sb
	})
}

// covers reports whether the snapshot's live trees are exactly ts, in
// order. The corpus passes the same state to both the join and the
// provider, so this holds by construction; the check keeps a mismatched
// provider from producing silently wrong candidates.
func (s *TokenSnap) covers(ts []*tree.Tree) bool {
	if len(ts) != len(s.posToSlot) {
		return false
	}
	for i, slot := range s.posToSlot {
		if s.trees[slot] != ts[i] {
			return false
		}
	}
	return true
}

// probe offers every candidate pair of the collection through px, walking
// the persistent lists instead of building a per-run index. The collection
// must be covered by the snapshot (checked by the source). Each unordered
// pair is offered at most once, at its later tree in the ascending-size
// order, exactly like the per-run source — so downstream filtering,
// verification, and results are identical.
func (s *TokenSnap) probe(px *Pipeline) {
	c := px.Collection()
	stats := px.Stats()
	start := time.Now()

	ctau := s.tz.Slack() * c.Tau
	budget := int32(ctau + 1)
	// slotToPos inverts the position contract for partner remapping.
	slotToPos := make([]int32, len(s.trees))
	for i, slot := range s.posToSlot {
		slotToPos[slot] = int32(i)
	}
	// stamp dedups partners within one probe: a partner sharing several
	// prefix tokens is offered once.
	stamp := make([]int32, len(s.trees))
	for i := range stamp {
		stamp[i] = -1
	}
	var scratch []scratchTok
	for ord, ti := range c.Order {
		if px.Cancelled() {
			break
		}
		slot := s.posToSlot[ti]
		bag := s.bags[slot]
		sz := int32(c.Trees[ti].Size())
		minSz := sz - int32(c.Tau)
		if int(bag.total) <= ctau {
			// Light probe: a qualifying partner may share no token, so scan
			// the whole size window. Partners after the probe in the
			// canonical (size, position) order are skipped — they will offer
			// the pair when they probe.
			lo := sort.Search(len(s.bySize), func(k int) bool {
				return s.sizes[s.bySize[k]] >= minSz
			})
			for _, pslot := range s.bySize[lo:] {
				szj := s.sizes[pslot]
				if szj > sz {
					break
				}
				pj := slotToPos[pslot]
				if szj == sz && pj >= int32(ti) {
					continue
				}
				px.Offer(ti, int(pj))
			}
		} else {
			// Heavy probe: walk the posting lists of the rarest Cτ+1
			// expanded elements of the probe's bag. Any such subset contains
			// at least one token a ≤ τ partner matches (≤ Cτ elements can go
			// unmatched), and matched tokens carry the partner in their full
			// posting list — so one hit suffices and the count threshold is
			// ≥ 1 under this orientation.
			scratch = scratch[:0]
			for _, tc := range bag.toks {
				scratch = append(scratch, scratchTok{freq: int64(len(s.post[tc.key])), key: tc.key, count: tc.count})
			}
			head := scratch
			if int(budget) < len(scratch) {
				selectSmallest(scratch, int(budget))
				head = scratch[:budget]
			}
			var taken int32
			for _, pt := range head {
				if taken >= budget {
					break
				}
				cnt := pt.count
				if room := budget - taken; cnt > room {
					cnt = room
				}
				taken += cnt
				for _, p := range s.post[pt.key] {
					if s.dead[p.slot] {
						stats.PostingsTombstoned++
						continue
					}
					if p.slot == slot {
						continue
					}
					szj := s.sizes[p.slot]
					if szj < minSz || szj > sz {
						continue
					}
					stats.PostingsScanned++
					pj := slotToPos[p.slot]
					if szj == sz && pj >= int32(ti) {
						continue
					}
					if stamp[p.slot] == int32(ord) {
						continue
					}
					stamp[p.slot] = int32(ord)
					px.Offer(ti, int(pj))
				}
			}
		}
	}
	stats.CandTime += time.Since(start)
}
