package engine

import (
	"treejoin/internal/sim"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// prepKey names the per-tree Zhang–Shasha preparation artifact in the
// corpus cache: postorder labels, leftmost-leaf indices and keyroots of both
// the left- and right-path decompositions, the strategy costs, and the
// sorted label multiset (ted.Prep). Like every per-tree signature it is
// τ-independent, so a warm corpus never re-runs prepare whatever threshold
// or method a later join picks.
const prepKey = "ted/prep"

// PrepFor returns the cached verifier preparation of t, computing and
// caching it on first use. A nil cache computes a fresh preparation.
func PrepFor(c *Cache, t *tree.Tree) *ted.Prep {
	if v, ok := c.Lookup(prepKey, t); ok {
		return v.(*ted.Prep)
	}
	p := ted.NewPrep(t)
	c.Store(prepKey, t, p)
	return p
}

// NewTEDVerifier returns the default candidate verifier: the τ-banded,
// early-terminating bounded TED over cached preparations. tc, when non-nil,
// accumulates the verifier's pruning counters (it is safe to share across
// workers); the engine folds them into the run's Stats.
func NewTEDVerifier(c *Cache, tc *ted.Counters) sim.Verifier {
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		return ted.DistanceBoundedPrep(PrepFor(c, t1), PrepFor(c, t2), tau, tc)
	}
}

// tedVerifierOver is NewTEDVerifier specialised to a fixed collection: the
// preparations are resolved through the cache once, up front, and the
// verifier reads them from an immutable map — lock-free on the hot parallel
// verify path, where two mutex-guarded cache lookups per candidate would
// serialise the workers the banding just unblocked. Trees outside the
// collection fall back to the cache.
func tedVerifierOver(ts []*tree.Tree, c *Cache, tc *ted.Counters) sim.Verifier {
	preps := Cached(c, prepKey, ts, ted.NewPrep)
	byTree := make(map[*tree.Tree]*ted.Prep, len(ts))
	for i, t := range ts {
		byTree[t] = preps[i]
	}
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		p1, p2 := byTree[t1], byTree[t2]
		if p1 == nil {
			p1 = PrepFor(c, t1)
		}
		if p2 == nil {
			p2 = PrepFor(c, t2)
		}
		return ted.DistanceBoundedPrep(p1, p2, tau, tc)
	}
}

// FullTEDVerifier is the Job.VerifierFor hook that forces the pre-banding
// verifier — size lower bound, then the full (unbanded) Zhang–Shasha DP — on
// every candidate. It backs the public WithUnbandedVerification ablation
// option and the verify benchmarks' baseline; results are identical to the
// banded verifier, only slower.
func FullTEDVerifier(c *Collection) sim.Verifier {
	cache := c.Cache()
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		return ted.DistanceBoundedPrepFull(PrepFor(cache, t1), PrepFor(cache, t2), tau)
	}
}
