package engine

import (
	"treejoin/internal/sim"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// prepKey names the per-tree Zhang–Shasha preparation artifact in the
// corpus cache: postorder labels, leftmost-leaf indices and keyroots of both
// the left- and right-path decompositions, the strategy costs, and the
// sorted label multiset (ted.Prep). Like every per-tree signature it is
// τ-independent, so a warm corpus never re-runs prepare whatever threshold
// or method a later join picks.
const prepKey = "ted/prep"

// PrepFor returns the cached verifier preparation of t, computing and
// caching it on first use. A nil cache computes a fresh preparation.
func PrepFor(c *Cache, t *tree.Tree) *ted.Prep {
	if v, ok := c.Lookup(prepKey, t); ok {
		return v.(*ted.Prep)
	}
	p := ted.NewPrep(t)
	c.Store(prepKey, t, p)
	return p
}

// NewTEDVerifier returns the default candidate verifier: the τ-banded,
// early-terminating bounded TED over cached preparations. tc, when non-nil,
// accumulates the verifier's pruning counters (it is safe to share across
// workers); the engine folds them into the run's Stats.
func NewTEDVerifier(c *Cache, tc *ted.Counters) sim.Verifier {
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		return ted.DistanceBoundedPrep(PrepFor(c, t1), PrepFor(c, t2), tau, tc)
	}
}

// ArenaKey names the per-tree struct-of-arrays verification view in the
// corpus cache (ted.TreeView): the postorder label/lml arrays of both
// decompositions, keyroots in both orders, structural arrays, sorted labels,
// and strategy costs. τ-independent like every signature, so a warm corpus
// verifies any later join out of the same arenas.
const ArenaKey = "ted/arena"

// ArenaFor returns the arena views of the collection, in order, serving each
// tree from the cache and flattening the misses in one contiguous BuildViews
// batch (the arena's locality comes from batching; per-tree builds would
// scatter the blocks). A nil cache degrades to a plain batch build.
func ArenaFor(c *Cache, ts []*tree.Tree) []*ted.TreeView {
	if c == nil {
		return ted.BuildViews(ts)
	}
	out := make([]*ted.TreeView, len(ts))
	var missing []int
	for i, t := range ts {
		if v, ok := c.Lookup(ArenaKey, t); ok {
			out[i] = v.(*ted.TreeView)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return out
	}
	mts := make([]*tree.Tree, len(missing))
	for k, i := range missing {
		mts[k] = ts[i]
	}
	built := ted.BuildViews(mts)
	for k, i := range missing {
		out[i] = built[k]
		c.Store(ArenaKey, ts[i], built[k])
	}
	return out
}

// arenaVerifier is one worker's batched arena verification context: the
// collection's views resolved once at construction (lock-free per candidate —
// a mutex-guarded cache lookup per pair would serialise the workers), plus
// the worker-private DP scratch that makes every VerifyPair allocation-free.
type arenaVerifier struct {
	views []*ted.TreeView
	s     *ted.VerifyScratch
	tc    *ted.Counters
}

func (v *arenaVerifier) VerifyPair(i, j, tau int) (int, bool) {
	return ted.DistanceBoundedView(v.views[i], v.views[j], tau, v.s, v.tc)
}

func (v *arenaVerifier) Close() {
	ted.ReleaseScratch(v.s)
	v.s = nil
}

// NewArenaVerifiers builds the default batched verifier factory over a fixed
// collection: arena views are resolved through the cache once, up front, and
// every minted verifier shares them, adding only a pooled per-worker scratch.
// tc, when non-nil, accumulates pruning and strategy counters across all
// workers; the engine folds them into the run's Stats.
func NewArenaVerifiers(ts []*tree.Tree, c *Cache, tc *ted.Counters) sim.BatchVerifierFactory {
	views := ArenaFor(c, ts)
	return func() sim.BatchVerifier {
		return &arenaVerifier{views: views, s: ted.AcquireScratch(), tc: tc}
	}
}

// FullTEDVerifier is the Job.VerifierFor hook that forces the pre-banding
// verifier — size lower bound, then the full (unbanded) Zhang–Shasha DP — on
// every candidate. It backs the public WithUnbandedVerification ablation
// option and the verify benchmarks' baseline; results are identical to the
// banded verifier, only slower.
func FullTEDVerifier(c *Collection) sim.Verifier {
	cache := c.Cache()
	return func(t1, t2 *tree.Tree, tau int) (int, bool) {
		return ted.DistanceBoundedPrepFull(PrepFor(cache, t1), PrepFor(cache, t2), tau)
	}
}
