package engine_test

import (
	"fmt"
	"testing"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// oracleSelf computes the self-join ground truth by exhaustive bounded TED.
func oracleSelf(ts []*tree.Tree, tau int) []sim.Pair {
	var out []sim.Pair
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if d, ok := ted.DistanceBounded(ts[i], ts[j], tau); ok {
				out = append(out, sim.Pair{I: i, J: j, Dist: d})
			}
		}
	}
	sim.SortPairs(out)
	return out
}

// oracleCross computes the cross-join ground truth.
func oracleCross(a, b []*tree.Tree, tau int) []sim.Pair {
	var out []sim.Pair
	for i := 0; i < len(a); i++ {
		for j := 0; j < len(b); j++ {
			if d, ok := ted.DistanceBounded(a[i], b[j], tau); ok {
				out = append(out, sim.Pair{I: i, J: j, Dist: d})
			}
		}
	}
	sim.SortPairs(out)
	return out
}

func equalPairs(t *testing.T, label string, got, want []sim.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestSortedLoopOracle: the bare sorted loop (size window only) equals the
// exhaustive oracle, self and cross, sequential and with parallel candidate
// generation.
func TestSortedLoopOracle(t *testing.T) {
	ts := synth.Synthetic(60, 11)
	for _, tau := range []int{0, 1, 3} {
		want := oracleSelf(ts, tau)
		for _, workers := range []int{0, 1, 4} {
			job := engine.Job{Tau: tau, Workers: workers}
			got, st := job.SelfJoin(ts)
			equalPairs(t, fmt.Sprintf("self τ=%d w=%d", tau, workers), got, want)
			if st.Results != int64(len(want)) || st.Trees != len(ts) {
				t.Fatalf("stats: %+v", st)
			}
		}
	}
	a, b := ts[:25], ts[25:]
	for _, tau := range []int{1, 3} {
		want := oracleCross(a, b, tau)
		for _, workers := range []int{0, 4} {
			job := engine.Job{Tau: tau, Workers: workers}
			got, _ := job.Join(a, b)
			equalPairs(t, fmt.Sprintf("cross τ=%d w=%d", tau, workers), got, want)
		}
	}
}

// sizeFilter is a trivially sound test stage counting its calls.
func sizeFilter(name string) engine.PairFilter {
	return engine.NewFilter(name, func(c *engine.Collection) func(i, j int) bool {
		tau := c.Tau
		return func(i, j int) bool {
			d := c.Trees[i].Size() - c.Trees[j].Size()
			if d < 0 {
				d = -d
			}
			return d <= tau
		}
	})
}

// rejectAll prunes everything — unsound on purpose, to observe attribution.
func rejectAll() engine.PairFilter {
	return engine.NewFilter("reject", func(c *engine.Collection) func(i, j int) bool {
		return func(i, j int) bool { return false }
	})
}

// TestStageAttribution: stage counters conserve pairs — every offered pair
// is either pruned by some stage or reaches the verifier — and merge
// correctly across parallel tasks.
func TestStageAttribution(t *testing.T) {
	ts := synth.Synthetic(50, 7)
	for _, workers := range []int{1, 4} {
		job := engine.Job{
			Tau:     2,
			Workers: workers,
			Filters: []engine.PairFilter{sizeFilter("size"), rejectAll()},
		}
		pairs, st := job.SelfJoin(ts)
		if len(pairs) != 0 {
			t.Fatalf("reject-all stage let %d pairs through", len(pairs))
		}
		if len(st.Stages) != 2 {
			t.Fatalf("stages: %+v", st.Stages)
		}
		first, second := st.Stages[0], st.Stages[1]
		if first.Name != "size" || second.Name != "reject" {
			t.Fatalf("stage names: %+v", st.Stages)
		}
		if first.Out() != second.In {
			t.Fatalf("stage flow broken: %d out vs %d in", first.Out(), second.In)
		}
		if second.Out() != st.Candidates {
			t.Fatalf("verifier fed %d, last stage emitted %d", st.Candidates, second.Out())
		}
		if second.Pruned != second.In {
			t.Fatalf("reject stage pruned %d of %d", second.Pruned, second.In)
		}
		if first.In == 0 {
			t.Fatal("no pairs offered at τ=2 on a 50-tree collection")
		}
	}
}

// TestFilterChainInvariance: chaining sound filters in any combination never
// changes the result set.
func TestFilterChainInvariance(t *testing.T) {
	ts := synth.Synthetic(40, 3)
	want, _ := engine.Job{Tau: 2}.SelfJoin(ts)
	got, st := engine.Job{
		Tau:     2,
		Filters: []engine.PairFilter{sizeFilter("a"), sizeFilter("b"), sizeFilter("c")},
	}.SelfJoin(ts)
	equalPairs(t, "chained", got, want)
	if len(st.Stages) != 3 {
		t.Fatalf("stages: %+v", st.Stages)
	}
}

// TestEmptyAndTiny: degenerate collections flow through every code path.
func TestEmptyAndTiny(t *testing.T) {
	if pairs, st := (engine.Job{Tau: 1}).SelfJoin(nil); len(pairs) != 0 || st.Results != 0 {
		t.Fatalf("empty: %v %+v", pairs, st)
	}
	lt := tree.NewLabelTable()
	one := []*tree.Tree{tree.MustParseBracket("{a}", lt)}
	if pairs, _ := (engine.Job{Tau: 1, Workers: 8}).SelfJoin(one); len(pairs) != 0 {
		t.Fatalf("singleton: %v", pairs)
	}
	if pairs, _ := (engine.Job{Tau: 1}).Join(one, nil); len(pairs) != 0 {
		t.Fatalf("cross empty: %v", pairs)
	}
	two := []*tree.Tree{tree.MustParseBracket("{a}", lt), tree.MustParseBracket("{b}", lt)}
	pairs, _ := (engine.Job{Tau: 1}).Join(two[:1], two[1:])
	if len(pairs) != 1 || pairs[0] != (sim.Pair{I: 0, J: 0, Dist: 1}) {
		t.Fatalf("cross pair: %v", pairs)
	}
}

// TestNegativeTauPanics: the engine guards the threshold invariant.
func TestNegativeTauPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(engine.Job{Tau: -1}).SelfJoin(nil)
}
