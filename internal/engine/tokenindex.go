package engine

import (
	"slices"
	"sort"
	"time"

	"treejoin/internal/tree"
)

// The token inverted-index candidate source: sub-quadratic candidate
// generation for every signature method whose filter rests on a bag bound
// |bag(T1) ⊖ bag(T2)| ≤ C·TED(T1, T2) (Euler q-grams with C = 4q for the
// STR/EUL/PQG class, label-histogram entries with C = 2 for HIST/SET).
//
// The sorted nested loop evaluates the method's lower bound on every pair in
// the τ size window — Θ(n²) filter calls even when almost nothing survives.
// This source inverts the work: a pair is materialised only when the index
// has already proved the two trees share enough tokens for the bound to
// possibly pass.
//
//   - Each tree is tokenised once; the bag (sorted distinct tokens with
//     multiplicities) is a τ-independent per-tree signature cached in the
//     run's artifact cache, so warm corpus joins re-tokenise nothing.
//   - Tokens are globally frequency-ordered (rare first). Of each tree's
//     bag, only the prefix a ≤ τ match cannot avoid is indexed: TED ≤ τ
//     forces multiset overlap ≥ max(|A|,|B|) − Cτ, and by the prefix-filter
//     theorem two such bags must share a token among their first Cτ+1
//     elements in any fixed total order. Rare-first ordering makes those
//     prefix postings the shortest ones.
//   - Probing walks the posting lists of the probe's whole bag in
//     ascending-size order (insertion order), merged by a heap over the list
//     frontiers, and counts each partner's tokens shared with the probe. A
//     partner is handed to the filter chain only when that count reaches
//     the threshold its bag sizes demand (MergeSkip-style skipping): a
//     qualifying pair overlaps in ≥ |A| − Cτ elements, of which at most
//     |B| − p_B fall outside B's indexed prefix, so fewer than
//     |A| − Cτ − (|B| − p_B) hits prove the bound unreachable and the pair
//     is dropped without ever running a pair predicate. Probing with the
//     full bag rather than the probe's own prefix is what gives the
//     threshold teeth (under symmetric prefixes it provably never exceeds
//     1); only globally rare tokens have posting lists, so most bag tokens
//     cost one empty map lookup.
//   - Trees whose whole bag has at most Cτ elements ("light" trees) can
//     qualify while sharing no token at all; they are kept in a side list
//     and paired by direct screening — cheap precisely because such trees
//     are tiny. A probe with a light bag scans only that list (all its
//     size-window partners are light too, bags being size-monotone).
//
// Every offered pair still runs through the job's filter chain (Screen →
// Emit), so the emitted candidate set is a subset of the sorted loop's
// post-filter survivors and the join result is bit-identical; see DESIGN.md,
// "Index-accelerated candidate generation", for the proofs.
//
// On tiny corpora — or thresholds at least the largest tree's size, where
// the C·τ slack swallows every bag — building the index costs more than the
// loop it replaces, so Tasks falls back to the sorted loop and stamps the
// effective source into Stats.Source.

// Tokenizer turns a tree into a token multiset with a proven bag bound:
// implementations guarantee |bag(T1) ⊖ bag(T2)| ≤ Slack()·TED(T1, T2) (⊖ is
// the multiset symmetric difference) and that bag size is monotone in tree
// size — a tree at least as large by Size() yields at least as large a bag.
// Both properties are load-bearing: the first makes index pruning sound, the
// second lets the ascending-size probe order assume the probe's bag is the
// larger one.
type Tokenizer interface {
	// Name labels the tokenisation in cache keys and diagnostics; it must
	// encode every parameter (e.g. "euler-grams/q=3"), so differently
	// parameterised tokenisations never alias a cache entry.
	Name() string
	// Slack returns the constant C of the bag bound.
	Slack() int
	// Tokens returns the token multiset of t, in any order.
	Tokens(t *tree.Tree) []uint64
}

// funcTokenizer adapts a (name, slack, tokens) triple to the interface.
type funcTokenizer struct {
	name   string
	slack  int
	tokens func(*tree.Tree) []uint64
}

func (f funcTokenizer) Name() string                 { return f.name }
func (f funcTokenizer) Slack() int                   { return f.slack }
func (f funcTokenizer) Tokens(t *tree.Tree) []uint64 { return f.tokens(t) }

// NewTokenizer builds a Tokenizer from a name, the bag-bound constant C, and
// the tokenisation function.
func NewTokenizer(name string, slack int, tokens func(*tree.Tree) []uint64) Tokenizer {
	return funcTokenizer{name: name, slack: slack, tokens: tokens}
}

// TokenIndexMinTrees is the auto-fallback cutoff: collections with fewer
// trees run the sorted loop instead — at this size the loop's Θ(n²) cheap
// filter calls beat the index's build cost.
const TokenIndexMinTrees = 48

type tokenIndexSource struct{ tz Tokenizer }

// TokenIndex returns the inverted-index candidate source over tz's tokens.
func TokenIndex(tz Tokenizer) CandidateSource { return tokenIndexSource{tz: tz} }

func (s tokenIndexSource) Name() string { return "token-index(" + s.tz.Name() + ")" }

func (s tokenIndexSource) Tasks(c *Collection, shards int) []Task {
	if len(c.Order) == 0 {
		return nil
	}
	// Fall back to the sorted loop when the index cannot pay for itself:
	// tiny collections, thresholds covering every size window, or a C·τ
	// slack that swallows even the largest tree's bag (bags are
	// size-monotone, so the largest tree's bag is the maximum — if it is
	// light, every tree is, and any token index degenerates to a light-list
	// scan, a worse sorted loop). The check precedes the dynamic-snapshot
	// branch on purpose: in the degenerate regime a maintained index is just
	// as useless as a per-run one, and skipping the provider here keeps a
	// dynamic corpus from ever materialising one for it. The largest bag is
	// read through the cache, so the probe task reuses the tokenisation when
	// the index does run later at another threshold.
	largest := c.Trees[c.Order[len(c.Order)-1]]
	if len(c.Order) < TokenIndexMinTrees || c.Tau >= largest.Size() ||
		int(s.cachedBag(c, largest).total) <= s.tz.Slack()*c.Tau {
		// Stamp the effective source so Stats attribution reports what
		// actually ran.
		tasks := SortedLoop().Tasks(c, shards)
		for i, t := range tasks {
			inner := t
			tasks[i] = func(px *Pipeline) {
				px.Stats().Source = SortedLoop().Name()
				inner(px)
			}
		}
		return tasks
	}
	// A dynamic corpus maintains a persistent full-bag index across joins;
	// probing it skips the per-run build entirely. The covers check pins the
	// snapshot to exactly this collection (same trees, same positions), so a
	// stale or foreign snapshot can never produce wrong candidates — the run
	// just falls through to the per-run index below.
	if snap := c.DynTokenSnap(s.tz); snap != nil && !c.Cross() && snap.covers(c.Trees) {
		return []Task{func(px *Pipeline) {
			px.Stats().Source = "dyn-" + s.Name()
			snap.probe(px)
		}}
	}
	// The probe/insert loop shares one index, so candidate generation is a
	// single sequential task; the engine still parallelises verification.
	return []Task{func(px *Pipeline) { s.run(px) }}
}

// cachedBag returns one tree's token bag through the run's artifact cache.
func (s tokenIndexSource) cachedBag(c *Collection, t *tree.Tree) *tokenBag {
	key := tokenBagKey(s.tz)
	if v, ok := c.Cache().Lookup(key, t); ok {
		return v.(*tokenBag)
	}
	b := buildBag(s.tz, t)
	c.Cache().Store(key, t, b)
	return b
}

// tokenCount is one distinct token of a tree's bag with its multiplicity.
type tokenCount struct {
	key   uint64
	count int32
}

// tokenBag is the cached per-tree tokenisation: distinct tokens sorted by
// key, plus the expanded bag size (Σ counts). τ-independent, so a corpus
// cache retains it across joins at any threshold.
type tokenBag struct {
	total int32
	toks  []tokenCount
}

// tokenBagKey names the artifact-cache entry of a tokenisation.
func tokenBagKey(tz Tokenizer) string { return "tokidx/" + tz.Name() }

func buildBag(tz Tokenizer, t *tree.Tree) *tokenBag {
	raw := tz.Tokens(t)
	if len(raw) == 0 {
		return &tokenBag{}
	}
	slices.Sort(raw)
	bag := &tokenBag{total: int32(len(raw)), toks: make([]tokenCount, 0, len(raw))}
	for lo := 0; lo < len(raw); {
		hi := lo + 1
		for hi < len(raw) && raw[hi] == raw[lo] {
			hi++
		}
		bag.toks = append(bag.toks, tokenCount{key: raw[lo], count: int32(hi - lo)})
		lo = hi
	}
	bag.toks = slices.Clip(bag.toks)
	return bag
}

// prefTok is one distinct token of a tree's indexed prefix with its
// multiplicity within the prefix; prefix arrays hold them in ascending
// global (frequency, key) order.
type prefTok struct {
	key   uint64
	count int32
}

// scratchTok is prefTok during prefix selection, carrying the token's global
// frequency so the selection can sort by the global order directly.
type scratchTok struct {
	freq  int64
	key   uint64
	count int32
}

// posting records that a tree's prefix contains count occurrences of a
// token. Lists grow in insertion order — ascending tree size — so a probe
// binary-searches its size window and walks each list front to back.
type posting struct {
	pos   int32 // per-side insertion sequence (the heap's merge key)
	tree  int32 // combined collection index
	count int32
}

// tokenSide is one side's index state: posting lists by token key, the
// light-tree list, and the insertion counter.
type tokenSide struct {
	post  map[uint64][]posting
	light []int32 // combined indices of inserted light trees, ascending size
	n     int32   // insertions so far
}

// frontier is one posting list being merged during a probe.
type frontier struct {
	list []posting
	i    int
	ca   int32 // the probe BAG's multiplicity of this token (probes walk
	// their full bag, not their prefix — the asymmetry the count
	// threshold's strength rests on; see run)
}

func (s tokenIndexSource) run(px *Pipeline) {
	c := px.Collection()
	stats := px.Stats()
	start := time.Now()

	ctau := s.tz.Slack() * c.Tau
	// The indexed prefix spends C'τ+1 expanded elements, where C' is the
	// tokenizer's Slack unless the planner raised it (Collection.PrefixC). A
	// longer prefix is always sound — it is a superset of the proven
	// Slack·τ+1 prefix, so the theorem's shared token is still indexed — and
	// it sharpens the count threshold below, which charges a partner for the
	// bag elements outside its prefix. Everything stated on the bag bound
	// itself (the light-tree cutoff, the overlap floor |A| − Cτ) stays at
	// Slack·τ: those are lower-bound facts the prefix length cannot change.
	cmul := s.tz.Slack()
	if c.PrefixC > cmul {
		cmul = c.PrefixC
	}
	budget := int32(cmul*c.Tau + 1) // expanded prefix length C'τ+1

	// Build phase: cached bags, global frequency ranks, per-tree prefixes.
	tz := s.tz
	bags := Cached(c.Cache(), tokenBagKey(tz), c.Trees, func(t *tree.Tree) *tokenBag {
		return buildBag(tz, t)
	})
	freq := make(map[uint64]int64, 1<<10)
	for _, b := range bags {
		for _, tc := range b.toks {
			freq[tc.key] += int64(tc.count)
		}
	}

	// Per-tree prefixes in the global order "rare tokens first, ties by
	// key": rare tokens have the short posting lists, so prefixes drawn from
	// the front of this order keep probe work minimal. Any fixed total order
	// is sound; frequency ordering is the classic heuristic.
	prefixes := make([][]prefTok, len(c.Trees))
	plen := make([]int32, len(c.Trees)) // expanded prefix length p_i = min(Cτ+1, total_i)
	var scratch []scratchTok
	for _, ti := range c.Order {
		b := bags[ti]
		scratch = scratch[:0]
		for _, tc := range b.toks {
			scratch = append(scratch, scratchTok{freq: freq[tc.key], key: tc.key, count: tc.count})
		}
		// The prefix spends at most budget expanded elements, so at most
		// budget distinct tokens matter: quickselect them to the front, then
		// sort only that head instead of the whole bag.
		head := scratch
		if int(budget) < len(scratch) {
			selectSmallest(scratch, int(budget))
			head = scratch[:budget]
		}
		slices.SortFunc(head, func(a, b scratchTok) int {
			if tokLess(a, b) {
				return -1
			}
			if tokLess(b, a) {
				return 1
			}
			return 0
		})
		var taken int32
		pref := make([]prefTok, 0, min32(budget, int32(len(head))))
		for _, pt := range head {
			if taken >= budget {
				break
			}
			cnt := pt.count
			if room := budget - taken; cnt > room {
				cnt = room
			}
			pref = append(pref, prefTok{key: pt.key, count: cnt})
			taken += cnt
		}
		prefixes[ti] = pref
		plen[ti] = taken
	}
	stats.IndexBuildTime += time.Since(start)

	// Probe/insert loop over the ascending-size order; cross joins keep one
	// index per side and probe the opposite one, exactly like the sorted
	// loop's pair enumeration (every unordered pair offered at most once, at
	// its larger tree's position).
	nSides := 1
	if c.Cross() {
		nSides = 2
	}
	sides := make([]*tokenSide, nSides)
	for i := range sides {
		sides[i] = &tokenSide{post: make(map[uint64][]posting, 1<<10)}
	}
	var fr []frontier
	for _, ti := range c.Order {
		if px.Cancelled() {
			break
		}
		side := 0
		if c.Cross() && ti >= c.Split {
			side = 1
		}
		probe := sides[(nSides-1)-side*(nSides-1)]
		ins := sides[side]

		sz := c.Trees[ti].Size()
		minSz := sz - c.Tau
		la := bags[ti].total
		if la <= int32(ctau) {
			// Light probe: a qualifying partner may share nothing, but every
			// size-window partner inserted so far is light too (bags are
			// size-monotone), so the side list is exhaustive.
			light := probe.light
			lo := sort.Search(len(light), func(k int) bool {
				return c.Trees[light[k]].Size() >= minSz
			})
			for _, tj := range light[lo:] {
				px.Offer(ti, int(tj))
			}
		} else {
			// Indexed probe: heap-merge the posting lists of the probe's
			// whole bag in ascending-size order, counting each partner's
			// shared tokens. The probe walks its full bag — not just its own
			// prefix — because only the asymmetric form gives the count
			// threshold teeth: a qualifying pair overlaps in ≥ |A| − Cτ
			// elements, of which at most |B| − p_B fall outside B's indexed
			// prefix, so B must collect |A| − Cτ − (|B| − p_B) hits from A's
			// lists. Only globally rare tokens have posting lists at all, so
			// most of the bag's lookups miss for free.
			fr = fr[:0]
			for _, tc := range bags[ti].toks {
				list := probe.post[tc.key]
				if len(list) == 0 {
					continue
				}
				lo := sort.Search(len(list), func(k int) bool {
					return c.Trees[list[k].tree].Size() >= minSz
				})
				if lo < len(list) {
					fr = append(fr, frontier{list: list, i: lo, ca: tc.count})
				}
			}
			heapify(fr)
			for len(fr) > 0 {
				pos := fr[0].list[fr[0].i].pos
				tj := fr[0].list[fr[0].i].tree
				var shared int32
				for len(fr) > 0 && fr[0].list[fr[0].i].pos == pos {
					e := fr[0].list[fr[0].i]
					shared += min32(fr[0].ca, e.count)
					stats.PostingsScanned++
					fr[0].i++
					if fr[0].i == len(fr[0].list) {
						fr[0] = fr[len(fr)-1]
						fr = fr[:len(fr)-1]
					}
					if len(fr) > 0 {
						siftDown(fr)
					}
				}
				// Count threshold: a ≤ τ pair's overlap is at least
				// |A| − Cτ, and at most |B| − p_B of it can fall outside B's
				// indexed prefix, so fewer than |A| − Cτ − (|B| − p_B) hits
				// prove the bag bound unreachable. For same-bag-size partners
				// this is the theorem's ≥ 1; it climbs with the bag-size gap,
				// so partners at the small end of the size window need the
				// most shared tokens.
				t := la - int32(ctau) - (bags[tj].total - plen[tj])
				if t < 1 {
					t = 1
				}
				if shared >= t {
					px.Offer(ti, int(tj))
				} else {
					stats.SkippedByCount++
				}
			}
		}

		// Insert: every tree's prefix is indexed (light probes may still be
		// found through it by later, heavier probes); light trees join the
		// side list as well.
		for _, pt := range prefixes[ti] {
			ins.post[pt.key] = append(ins.post[pt.key], posting{pos: ins.n, tree: int32(ti), count: pt.count})
		}
		if la <= int32(ctau) {
			ins.light = append(ins.light, int32(ti))
		}
		ins.n++
	}
	stats.CandTime += time.Since(start)
}

// tokLess is the global total order on tokens: ascending frequency, ties by
// key.
func tokLess(a, b scratchTok) bool {
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.key < b.key
}

// selectSmallest partitions s so that its k smallest entries under the
// global order occupy s[:k], in no particular order (median-of-three
// quickselect; k < len(s)).
func selectSmallest(s []scratchTok, k int) {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted inputs.
		mid := lo + (hi-lo)/2
		if tokLess(s[mid], s[lo]) {
			s[lo], s[mid] = s[mid], s[lo]
		}
		if tokLess(s[hi], s[lo]) {
			s[lo], s[hi] = s[hi], s[lo]
		}
		if tokLess(s[hi], s[mid]) {
			s[mid], s[hi] = s[hi], s[mid]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for tokLess(s[i], pivot) {
				i++
			}
			for tokLess(pivot, s[j]) {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k > i:
			lo = i
		default:
			return
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// heapify establishes the min-heap order on the frontiers (keyed by the
// current entry's pos).
func heapify(fr []frontier) {
	for i := len(fr)/2 - 1; i >= 0; i-- {
		sift(fr, i)
	}
}

// siftDown restores the heap after the root's frontier advanced.
func siftDown(fr []frontier) { sift(fr, 0) }

func sift(fr []frontier, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(fr) && fr[l].list[fr[l].i].pos < fr[m].list[fr[m].i].pos {
			m = l
		}
		if r < len(fr) && fr[r].list[fr[r].i].pos < fr[m].list[fr[m].i].pos {
			m = r
		}
		if m == i {
			return
		}
		fr[i], fr[m] = fr[m], fr[i]
		i = m
	}
}
