package engine_test

import (
	"fmt"
	"testing"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// TestArenaForCaching: ArenaFor serves cached views by pointer identity,
// builds only the misses, and a dynamic collection's new trees slot in
// without rebuilding the warm ones.
func TestArenaForCaching(t *testing.T) {
	ts := synth.Synthetic(20, 19)
	c := engine.NewCache()

	views := engine.ArenaFor(c, ts)
	if len(views) != len(ts) {
		t.Fatalf("%d views for %d trees", len(views), len(ts))
	}
	for i, v := range views {
		if v.T != ts[i] {
			t.Fatalf("view %d flattens the wrong tree", i)
		}
	}
	if got := c.KindEntries(engine.ArenaKey); got != len(ts) {
		t.Fatalf("KindEntries = %d, want %d", got, len(ts))
	}

	// Warm pass: identical view pointers, no new entries.
	again := engine.ArenaFor(c, ts)
	for i := range views {
		if again[i] != views[i] {
			t.Fatalf("warm ArenaFor rebuilt view %d", i)
		}
	}

	// A grown collection rebuilds only the new tree.
	grown := append(append([]*tree.Tree{}, ts...), synth.Synthetic(21, 19)[20])
	mixed := engine.ArenaFor(c, grown)
	for i := range views {
		if mixed[i] != views[i] {
			t.Fatalf("grown ArenaFor rebuilt warm view %d", i)
		}
	}
	if mixed[len(ts)].T != grown[len(ts)] {
		t.Fatal("grown ArenaFor missed the new tree")
	}
	if got := c.KindEntries(engine.ArenaKey); got != len(ts)+1 {
		t.Fatalf("KindEntries after growth = %d, want %d", got, len(ts)+1)
	}

	// Eviction drops the arena artifact with every other kind.
	c.Evict(ts[0])
	if got := c.KindEntries(engine.ArenaKey); got != len(ts) {
		t.Fatalf("KindEntries after Evict = %d, want %d", got, len(ts))
	}

	// A nil cache degrades to a plain batch build.
	bare := engine.ArenaFor(nil, ts)
	if len(bare) != len(ts) || bare[0].T != ts[0] {
		t.Fatal("nil-cache ArenaFor broken")
	}
}

// TestArenaVerifierMatchesOracle: the default engine verifier (the batched
// arena path) returns bit-identical pairs and distances to the exhaustive
// pointer-kernel oracle, across worker counts and thresholds — the engine
// half of the arena soundness argument (internal/ted proves the kernel).
func TestArenaVerifierMatchesOracle(t *testing.T) {
	ts := synth.Synthetic(60, 23)
	for _, tau := range []int{0, 1, 2, 4, 8} {
		want := oracleSelf(ts, tau)
		for _, workers := range []int{1, 4} {
			got, st := engine.Job{Tau: tau, Workers: workers}.SelfJoin(ts)
			equalPairs(t, fmt.Sprintf("arena τ=%d w=%d", tau, workers), got, want)
			if tau > 0 && st.StrategyLeft+st.StrategyRight == 0 && st.Candidates > st.DPAvoided {
				t.Fatalf("τ=%d w=%d: no strategy decisions recorded over %d DP candidates",
					tau, workers, st.Candidates-st.DPAvoided)
			}
		}
	}
}

// TestArenaVerifierZeroAllocs is the allocation regression gate of the
// batched verify path: with warm arena views, a worker's whole
// candidate-batch loop — strategy choice, banded DP, scratch reuse —
// allocates nothing per pair.
func TestArenaVerifierZeroAllocs(t *testing.T) {
	ts := synth.Synthetic(24, 29)
	cache := engine.NewCache()
	factory := engine.NewArenaVerifiers(ts, cache, nil)
	var cands []sim.Candidate
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			cands = append(cands, sim.Candidate{I: i, J: j})
		}
	}
	v := factory()
	defer v.Close()
	// Warm the scratch to steady state before measuring.
	for _, c := range cands {
		v.VerifyPair(c.I, c.J, 4)
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, c := range cands {
			v.VerifyPair(c.I, c.J, 4)
		}
	})
	if allocs != 0 {
		t.Fatalf("batched arena verify allocated %.1f times per %d-pair batch, want 0", allocs, len(cands))
	}
}

// TestCustomVerifierStillRuns: a Job with an explicit Verifier bypasses the
// arena path through the stateless adapter, and its decisions are respected
// verbatim (the legacy contract tests depend on).
func TestCustomVerifierStillRuns(t *testing.T) {
	ts := synth.Synthetic(30, 31)
	var calls int64
	v := func(t1, t2 *tree.Tree, tau int) (int, bool) {
		calls++
		return sim.DefaultVerifier(t1, t2, tau)
	}
	got, st := engine.Job{Tau: 2, Verifier: v, Workers: 1}.SelfJoin(ts)
	want := oracleSelf(ts, 2)
	equalPairs(t, "custom verifier", got, want)
	if calls != st.Candidates {
		t.Fatalf("custom verifier saw %d candidates, stats say %d", calls, st.Candidates)
	}
	if st.StrategyLeft+st.StrategyRight != 0 {
		t.Fatal("custom-verifier run recorded arena strategy counters")
	}
}
