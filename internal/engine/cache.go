package engine

import (
	"sync"

	"treejoin/internal/tree"
)

// Cache is the per-corpus artifact store: every τ-independent per-tree
// signature a filter or source computes (traversal strings, histograms,
// Euler strings, gram bags, binary views, δ-partitions) is keyed here by
// (artifact kind, tree identity) so a later join over the same trees — at a
// different threshold, with a different method, or against another
// collection — reuses it instead of recomputing.
//
// Artifacts are keyed by tree *pointer*: trees are immutable after
// construction, so pointer identity is value identity, and a cross join
// mixing two corpora hits on exactly the trees the two sides share. Keys of
// τ-dependent artifacts must encode the parameter (e.g. "partsj/delta=7"), so
// a changed threshold misses instead of aliasing.
//
// A Cache is safe for concurrent use. Builds run outside the lock, so two
// racing tasks may compute the same artifact; both results are identical
// (builders are deterministic) and only one is retained.
type Cache struct {
	mu     sync.Mutex
	m      map[string]map[*tree.Tree]any
	hits   int64
	misses int64

	// route, when non-nil, makes this cache a pure router: every per-tree
	// operation is delegated to route(t), and nothing is stored locally. A
	// cross join of two corpora routes each tree's artifacts to the cache
	// of the corpus that owns it, so neither corpus retains (and pins) the
	// other's trees.
	route func(t *tree.Tree) *Cache
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]map[*tree.Tree]any)}
}

// RoutedCache returns a cache that delegates every per-tree operation to
// route(t). Stats of a routed cache are always zero — read the underlying
// caches instead.
func RoutedCache(route func(t *tree.Tree) *Cache) *Cache {
	return &Cache{route: route}
}

// CacheStats is a snapshot of a cache's effectiveness counters. A warm
// corpus shows Misses frozen while Hits grows: zero per-tree signature
// recomputation.
type CacheStats struct {
	Hits    int64 // artifact lookups served from the cache
	Misses  int64 // lookups that had to compute the artifact
	Entries int   // artifacts currently stored
}

// Stats returns a snapshot of the hit/miss counters and the entry count.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{Hits: c.hits, Misses: c.misses}
	for _, byTree := range c.m {
		st.Entries += len(byTree)
	}
	return st
}

// KindEntries returns how many trees currently have an artifact of the given
// kind — zero for a routed cache, which stores nothing locally. A dynamic
// corpus reads it to decide whether to keep an artifact family warm on Add:
// a kind that is populated has been paid for by a join, so maintaining it
// beats letting the next join rebuild it for every tree.
func (c *Cache) KindEntries(key string) int {
	if c == nil || c.route != nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m[key])
}

// Lookup returns the artifact cached for (key, t). A miss is counted even
// when the caller never stores a value back.
func (c *Cache) Lookup(key string, t *tree.Tree) (any, bool) {
	if c == nil {
		return nil, false
	}
	if c.route != nil {
		return c.route(t).Lookup(key, t)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key][t]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Store records the artifact for (key, t), overwriting any previous value.
func (c *Cache) Store(key string, t *tree.Tree, v any) {
	if c == nil {
		return
	}
	if c.route != nil {
		c.route(t).Store(key, t, v)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	byTree := c.m[key]
	if byTree == nil {
		byTree = make(map[*tree.Tree]any)
		c.m[key] = byTree
	}
	byTree[t] = v
}

// Evict removes every artifact cached for the given trees, across all
// artifact kinds, and returns the number of entries dropped. A dynamic
// corpus calls it when trees are removed, so the cache's memory tracks the
// live collection instead of everything ever joined; re-adding the same
// tree later simply recomputes (and re-caches) its signatures. Evicting
// from a routed cache delegates per tree, exactly like Lookup and Store.
func (c *Cache) Evict(ts ...*tree.Tree) int {
	if c == nil {
		return 0
	}
	if c.route != nil {
		n := 0
		for _, t := range ts {
			n += c.route(t).Evict(t)
		}
		return n
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range ts {
		for _, byTree := range c.m {
			if _, ok := byTree[t]; ok {
				delete(byTree, t)
				n++
			}
		}
	}
	return n
}

// Cached returns build(t) for every tree of ts, in order, computing each
// missing artifact exactly once and caching it under key. With a nil cache it
// degrades to plain computation — the pre-corpus behaviour. The misses are
// built outside the lock, in input order.
func Cached[T any](c *Cache, key string, ts []*tree.Tree, build func(*tree.Tree) T) []T {
	out := make([]T, len(ts))
	if c == nil {
		for i, t := range ts {
			out[i] = build(t)
		}
		return out
	}
	if c.route != nil {
		// Routed cache: per-tree delegation (the trees span two caches, so
		// there is no single lock to bulk under).
		for i, t := range ts {
			if v, ok := c.Lookup(key, t); ok {
				out[i] = v.(T)
			} else {
				out[i] = build(t)
				c.Store(key, t, out[i])
			}
		}
		return out
	}
	// Snapshot hits and note misses under one lock acquisition.
	c.mu.Lock()
	byTree := c.m[key]
	if byTree == nil {
		byTree = make(map[*tree.Tree]any)
		c.m[key] = byTree
	}
	missing := make([]int, 0, len(ts))
	for i, t := range ts {
		if v, ok := byTree[t]; ok {
			c.hits++
			out[i] = v.(T)
		} else {
			c.misses++
			missing = append(missing, i)
		}
	}
	c.mu.Unlock()
	if len(missing) == 0 {
		return out
	}
	for _, i := range missing {
		out[i] = build(ts[i])
	}
	c.mu.Lock()
	for _, i := range missing {
		byTree[ts[i]] = out[i]
	}
	c.mu.Unlock()
	return out
}
