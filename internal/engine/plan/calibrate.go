package plan

import (
	"context"
	"time"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Calibration bounds. The sample is a size-ordered stride of the corpus —
// it preserves the size distribution's shape (and always includes the
// largest tree, so the token index's own fallback conditions trip on the
// sample iff they trip on the corpus) while keeping the probe's cost far
// below one full join.
const (
	calSampleMax = 128
	calPairCap   = 1024
)

// calibrate fills the model's gaps for a cold corpus with a sampled probe:
// independent per-stage predicate timings over a stride of the sample's
// window pairs (unconditional kill rates, which run feedback can never give
// for stages behind other stages), plus one mini run per candidate source
// whose stats fold in as calibration-grade source and verify costs. All
// probe work routes through the run's artifact cache, so a warm corpus's
// cached signatures are read, not recomputed, and the sample's artifacts
// pre-warm the real run that follows.
func (m *Model) calibrate(req Request) {
	m.calMu.Lock()
	defer m.calMu.Unlock()
	free := req.Tokenizer != nil && req.PinSource == ""
	if m.covered(req, free) {
		return // another query calibrated while we waited
	}
	e, seen := m.calDone[req.Tau]
	if seen && e == req.Epoch {
		// A probe already ran this epoch and still left gaps (e.g. the
		// sample degenerated to the loop fallback, so no index cost
		// exists). Retrying every query would only repeat it.
		return
	}
	m.calDone[req.Tau] = req.Epoch

	ctx := req.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	sample := sampleTrees(req.Trees)

	// Per-stage probes: every stage sees the same unconditional stride of
	// window pairs, so kill rates are comparable and order-independent.
	col := engine.NewProbeCollection(ctx, sample, req.Tau, req.Cache)
	pairs := sampleWindowPairs(col, calPairCap)
	for _, s := range req.Stages {
		if ctx.Err() != nil {
			return
		}
		if len(pairs) == 0 {
			break
		}
		pred := s.Filter.Prepare(col)
		kills := 0
		start := time.Now()
		for _, p := range pairs {
			if !pred(p[0], p[1]) {
				kills++
			}
		}
		elapsed := time.Since(start)
		m.mu.Lock()
		at(m.stages, s.Name, req.Tau).fold(req.Epoch, obs{
			in:     float64(len(pairs)),
			pruned: float64(kills),
			ns:     float64(elapsed.Nanoseconds()),
			calls:  float64(len(pairs)),
		}, false)
		m.mu.Unlock()
	}

	// Mini runs: the full pipeline over the sample under each candidate
	// source, folded with the stage entries stripped — conditional stage
	// numbers from a chain run would pollute the unconditional probe rates
	// above. Results are discarded; only the costs matter. A mini index run
	// that falls back to the loop folds under its *effective* source, which
	// is exactly right: in that regime the real run falls back too.
	filters := make([]engine.PairFilter, len(req.Stages))
	for i, s := range req.Stages {
		filters[i] = s.Filter
	}
	drop := func(sim.Pair) bool { return true }
	mini := engine.Job{Filters: filters, Tau: req.Tau, Workers: 1, Cache: req.Cache}
	if st, err := mini.StreamSelf(ctx, sample, drop); err == nil {
		st.Stages = nil
		m.observe(st, sample, -1, req.Tau, req.Epoch, false)
	}
	if free {
		mini.Source = engine.TokenIndex(req.Tokenizer)
		if st, err := mini.StreamSelf(ctx, sample, drop); err == nil {
			st.Stages = nil
			m.observe(st, sample, -1, req.Tau, req.Epoch, false)
		}
	}
}

// sampleTrees returns a deterministic size-ordered stride of at most
// calSampleMax trees, always including the smallest and largest.
func sampleTrees(ts []*tree.Tree) []*tree.Tree {
	if len(ts) <= calSampleMax {
		return ts
	}
	order := sim.SizeOrder(ts)
	last := len(order) - 1
	out := make([]*tree.Tree, calSampleMax)
	for k := range out {
		out[k] = ts[order[k*last/(calSampleMax-1)]]
	}
	return out
}

// sampleWindowPairs enumerates the collection's window pairs in size order
// and strides them down to at most cap — a representative spread across the
// size distribution rather than a prefix of small trees.
func sampleWindowPairs(col *engine.Collection, limit int) [][2]int {
	var all [][2]int
	for p, ti := range col.Order {
		sz := col.Trees[ti].Size()
		for q := col.WindowStart(sz); q < p; q++ {
			all = append(all, [2]int{ti, col.Order[q]})
		}
	}
	if len(all) <= limit {
		return all
	}
	out := make([][2]int, limit)
	last := len(all) - 1
	for k := range out {
		out[k] = all[k*last/(limit-1)]
	}
	return out
}
