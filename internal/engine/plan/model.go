package plan

import (
	"sort"
	"strings"
	"sync"

	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Model is a corpus's learned planning state: exponentially decayed
// observations of stage selectivity and cost, source run costs, and
// verification cost, keyed by (name, τ) and aged by the corpus's mutation
// epoch. It lives alongside the corpus's artifact cache (one Model per
// corpus, shared with its snapshots) and is safe for concurrent use.
//
// Two decays compose. Folding a new observation retains runRetain of the
// old sums, so recent runs dominate a stationary corpus; and every epoch
// step (an Add/Remove batch) multiplies all sums by decayPerEpoch, so a
// mutating corpus's stale observations fade until a calibration probe
// refreshes them. An observation whose weight decays below minWeight is no
// longer trusted.
type Model struct {
	mu      sync.Mutex
	stages  map[key]*obs
	sources map[key]*obs
	verify  obs

	// win memoises exact window-pair counts for the current epoch (the
	// count is a function of the membership, so an epoch step invalidates
	// it).
	win      map[winKey]int64
	winEpoch int64

	// calMu serialises calibration probes; calDone records the last epoch a
	// probe ran per τ so a probe that could not produce usable data (e.g.
	// the sample degenerates to the loop fallback) is not retried every
	// query.
	calMu   sync.Mutex
	calDone map[int]int64
}

// New returns an empty model.
func New() *Model {
	return &Model{
		stages:  make(map[key]*obs),
		sources: make(map[key]*obs),
		calDone: make(map[int]int64),
	}
}

type key struct {
	name string
	tau  int
}

type winKey struct {
	n, split, tau int
}

// Decay and trust constants; see Model.
const (
	decayPerEpoch = 0.80
	runRetain     = 0.70
	minWeight     = 0.20
	// realMin: the decayed completed-run fold count above which an
	// observation counts as run-backed rather than calibration-only.
	realMin = 0.45
	// maxDecaySteps caps the epoch-gap exponent (beyond it everything is
	// zero anyway).
	maxDecaySteps = 64
)

// obs is one decayed observation bucket. Stage folds use in/pruned (offer
// and kill counts) and ns/calls (sampled predicate time); source folds use
// candNs/buildNs (per-run candidate-stage wall and index-build time),
// wp/trees (the runs' window-pair counts and collection sizes, for
// scaling), offers/skipped/scanned (chain offers, count-threshold skips,
// posting entries scanned); the verify bucket uses ns/calls (verification
// time per candidate). Ratios of decayed sums are the estimates.
type obs struct {
	epoch int64
	w     float64
	real  float64

	in, pruned float64
	ns, calls  float64

	candNs, buildNs float64
	wp, trees       float64
	offers, skipped float64
	scanned         float64
}

// age decays the bucket forward to epoch; a bucket is never aged backwards.
func (o *obs) age(epoch int64) {
	if epoch <= o.epoch {
		return
	}
	d := epoch - o.epoch
	if d > maxDecaySteps {
		d = maxDecaySteps
	}
	f := 1.0
	for i := int64(0); i < d; i++ {
		f *= decayPerEpoch
	}
	o.w *= f
	o.real *= f
	o.in *= f
	o.pruned *= f
	o.ns *= f
	o.calls *= f
	o.candNs *= f
	o.buildNs *= f
	o.wp *= f
	o.trees *= f
	o.offers *= f
	o.skipped *= f
	o.scanned *= f
	o.epoch = epoch
}

// fold merges one run's numbers into the bucket with EWMA retention. A run
// observed at an older epoch than the bucket (a query pinned to a stale
// snapshot) folds in down-weighted by the epochs it missed.
func (o *obs) fold(epoch int64, add obs, real bool) {
	g := 1.0
	if epoch < o.epoch {
		d := o.epoch - epoch
		if d > maxDecaySteps {
			d = maxDecaySteps
		}
		for i := int64(0); i < d; i++ {
			g *= decayPerEpoch
		}
	} else {
		o.age(epoch)
	}
	o.w = o.w*runRetain + g
	if real {
		o.real = o.real*runRetain + g
	} else {
		o.real *= runRetain
	}
	o.in = o.in*runRetain + g*add.in
	o.pruned = o.pruned*runRetain + g*add.pruned
	o.ns = o.ns*runRetain + g*add.ns
	o.calls = o.calls*runRetain + g*add.calls
	o.candNs = o.candNs*runRetain + g*add.candNs
	o.buildNs = o.buildNs*runRetain + g*add.buildNs
	o.wp = o.wp*runRetain + g*add.wp
	o.trees = o.trees*runRetain + g*add.trees
	o.offers = o.offers*runRetain + g*add.offers
	o.skipped = o.skipped*runRetain + g*add.skipped
	o.scanned = o.scanned*runRetain + g*add.scanned
}

func usable(o *obs) bool { return o != nil && o.w >= minWeight }

func backedByRuns(o *obs) bool { return o != nil && o.real >= realMin }

// tauAccept reports whether an observation at τ' may stand in for a query
// at τ: the gap must stay within 1 + τ/2 (window widths and kill rates
// drift with the threshold, but nearby thresholds are good proxies).
func tauAccept(tau, got int) bool {
	d := tau - got
	if d < 0 {
		d = -d
	}
	return d <= 1+tau/2
}

// nearestLocked returns the freshest usable bucket for name at or near tau,
// aging candidates to epoch on the way. Exact τ wins; otherwise the closest
// accepted τ (ties toward smaller τ, which has the tighter window).
func nearestLocked(mm map[key]*obs, name string, tau int, epoch int64) (*obs, bool) {
	if o, ok := mm[key{name, tau}]; ok {
		o.age(epoch)
		if usable(o) {
			return o, true
		}
	}
	var best *obs
	bestGap := -1
	for k, o := range mm {
		if k.name != name || k.tau == tau || !tauAccept(tau, k.tau) {
			continue
		}
		o.age(epoch)
		if !usable(o) {
			continue
		}
		gap := tau - k.tau
		if gap < 0 {
			gap = -gap
		}
		if best == nil || gap < bestGap || (gap == bestGap && k.tau < tau) {
			best, bestGap = o, gap
		}
	}
	return best, best != nil
}

// stageAt and sourceAt read the usable observation for a stage or source at
// (or near) tau. Callers hold m.mu.
func (m *Model) stageAt(name string, tau int, epoch int64) (*obs, bool) {
	o, ok := nearestLocked(m.stages, name, tau, epoch)
	if !ok || o.in <= 0 || o.calls <= 0 {
		return nil, false
	}
	return o, true
}

func (m *Model) sourceAt(name string, tau int, epoch int64) (*obs, bool) {
	o, ok := nearestLocked(m.sources, name, tau, epoch)
	if !ok || o.candNs <= 0 {
		return nil, false
	}
	return o, true
}

// at returns the exact-τ bucket, creating it if missing. Callers hold m.mu.
func at(mm map[key]*obs, name string, tau int) *obs {
	k := key{name, tau}
	o := mm[k]
	if o == nil {
		o = &obs{}
		mm[k] = o
	}
	return o
}

// NormalizeSource maps an effective Stats.Source to the model's source key:
// the dynamic-snapshot prefix and the tokenizer suffix are variants of the
// same cost regime ("dyn-token-index(labels)" → "token-index").
func NormalizeSource(s string) string {
	s = strings.TrimPrefix(s, "dyn-")
	if i := strings.IndexByte(s, '('); i >= 0 {
		s = s[:i]
	}
	return s
}

// Observe folds one completed run's statistics into the model: per-stage
// offer/kill counts and sampled predicate costs (in executed order — the
// attribution the engine now guarantees), the effective source's
// candidate-stage wall cost with its scaling denominators, and the
// verification cost per candidate. ts/split identify the run's collection
// (combined A++B and len(A) for cross joins, split=-1 for self joins);
// epoch is the corpus epoch the run was pinned to.
func (m *Model) Observe(st *sim.Stats, ts []*tree.Tree, split, tau int, epoch int64) {
	m.observe(st, ts, split, tau, epoch, true)
}

func (m *Model) observe(st *sim.Stats, ts []*tree.Tree, split, tau int, epoch int64, real bool) {
	if st == nil || st.Trees == 0 || tau < 0 {
		return
	}
	wp := m.WindowPairs(ts, split, tau, epoch)
	src := NormalizeSource(st.Source)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sg := range st.Stages {
		if sg.In == 0 {
			continue
		}
		at(m.stages, sg.Name, tau).fold(epoch, obs{
			in:     float64(sg.In),
			pruned: float64(sg.Pruned),
			ns:     float64(sg.SampledNs),
			calls:  float64(sg.Sampled),
		}, real)
	}
	if src != "" {
		offers := float64(st.Candidates)
		if len(st.Stages) > 0 {
			offers = float64(st.Stages[0].In)
		}
		at(m.sources, src, tau).fold(epoch, obs{
			candNs:  float64(st.CandWall.Nanoseconds()),
			buildNs: float64(st.IndexBuildTime.Nanoseconds()),
			wp:      float64(wp),
			trees:   float64(st.Trees),
			offers:  offers,
			skipped: float64(st.SkippedByCount),
			scanned: float64(st.PostingsScanned),
		}, real)
	}
	if st.Candidates > 0 && st.VerifyTime > 0 {
		m.verify.fold(epoch, obs{
			ns:    float64(st.VerifyTime.Nanoseconds()),
			calls: float64(st.Candidates),
		}, real)
	}
}

// WindowPairs returns the exact number of unordered tree pairs within the τ
// size window — every pair |size(a) − size(b)| ≤ τ, cross pairs only when
// split ≥ 0. This is the sorted loop's exact offer count and the common
// scaling denominator of the model's cost extrapolations; counts are
// memoised per epoch.
func (m *Model) WindowPairs(ts []*tree.Tree, split, tau int, epoch int64) int64 {
	k := winKey{n: len(ts), split: split, tau: tau}
	m.mu.Lock()
	// The memo epoch only ever advances: a query pinned to a stale snapshot
	// (epoch < winEpoch) computes its count directly and never touches the
	// memo. Letting it rewind would both thrash the memo (live and stale
	// queries alternately flushing each other's entries) and poison it —
	// winKey is (n, split, τ), so a stale membership of the same size could
	// leave its count behind for a live query to read.
	if m.win == nil || epoch > m.winEpoch {
		m.win = make(map[winKey]int64)
		m.winEpoch = epoch
	}
	if epoch == m.winEpoch {
		if v, ok := m.win[k]; ok {
			m.mu.Unlock()
			return v
		}
	}
	m.mu.Unlock()
	v := countWindowPairs(ts, split, tau)
	m.mu.Lock()
	if m.winEpoch == epoch {
		m.win[k] = v
	}
	m.mu.Unlock()
	return v
}

func countWindowPairs(ts []*tree.Tree, split, tau int) int64 {
	if split < 0 {
		sizes := make([]int, len(ts))
		for i, t := range ts {
			sizes[i] = t.Size()
		}
		sort.Ints(sizes)
		var n int64
		lo := 0
		for p, sz := range sizes {
			for sizes[lo] < sz-tau {
				lo++
			}
			n += int64(p - lo)
		}
		return n
	}
	sa := make([]int, split)
	for i := 0; i < split; i++ {
		sa[i] = ts[i].Size()
	}
	sb := make([]int, len(ts)-split)
	for i := split; i < len(ts); i++ {
		sb[i-split] = ts[i].Size()
	}
	sort.Ints(sa)
	sort.Ints(sb)
	var n int64
	lo, hi := 0, 0
	for _, sz := range sa {
		for lo < len(sb) && sb[lo] < sz-tau {
			lo++
		}
		if hi < lo {
			hi = lo
		}
		for hi < len(sb) && sb[hi] <= sz+tau {
			hi++
		}
		n += int64(hi - lo)
	}
	return n
}
