// Package plan is the engine's adaptive query planner: a per-corpus cost
// model that learns per-stage selectivity and per-pair cost, source costs,
// and posting-scan rates from completed runs — plus a cheap sampled
// calibration probe on cold corpora — and picks, per query, the candidate
// source (token index vs. sorted loop), the prefilter subset and order, and
// the token index's prefix-length multiplier C.
//
// Soundness is unconditional: the planner only permutes, drops, or
// re-parameterises components that are individually sound in any
// configuration. Every filter stage is a sound TED lower bound (any subset
// in any order admits a superset of the default chain's survivors, and the
// verifier decides them exactly); both sources enumerate a superset of the
// result pairs; and any prefix multiplier C' ≥ Slack indexes a superset of
// the proven prefix. So every plan the model can emit yields bit-identical
// results to the fixed default plan — the cost model only decides where the
// work happens, never what the answer is. See DESIGN.md, "Adaptive
// planning".
//
// Decisions are deliberately sticky: switching away from a default needs
// both a decisive relative margin and an absolute predicted saving
// (chainFloorNs, sourceFloor*). On the small collections typical of tests —
// where every plan finishes in microseconds — the model therefore always
// re-emits the fixed default plan, keeping behavior deterministic; the
// floors only clear on workloads where the difference is worth having.
package plan

import (
	"context"
	"math"
	"sort"

	"treejoin/internal/engine"
	"treejoin/internal/sim"
	"treejoin/internal/tree"
)

// Plan origins recorded in sim.PlanRecord.Origin.
const (
	// OriginFixed marks the static default plan (planning skipped, not
	// applicable, or its floors not cleared by the predicted saving).
	OriginFixed = "fixed"
	// OriginCalibrated marks a plan chosen from a sampled calibration probe
	// with no (recent enough) completed-run feedback behind it.
	OriginCalibrated = "calibrated"
	// OriginObserved marks a plan backed by completed-run observations.
	OriginObserved = "observed"
)

// Normalized source names the model keys its cost observations by; see
// NormalizeSource.
const (
	SourceTokenIndex = "token-index"
	SourceSortedLoop = "sorted-loop"
)

// Stage pairs a filter with its stage name for planning.
type Stage struct {
	Name   string
	Filter engine.PairFilter
}

// Request describes one query to plan: the collection (combined A++B for
// cross joins), the threshold, the corpus epoch the membership was read at,
// the artifact cache the run will use, and the method's default pipeline.
type Request struct {
	// Ctx bounds the calibration probe's mini-runs; nil means Background.
	Ctx context.Context
	// Trees is the combined collection; Split is len(A) for cross joins and
	// -1 for self joins (the engine's convention).
	Trees []*tree.Tree
	Split int
	Tau   int
	// Epoch is the corpus mutation epoch of the membership; observations
	// decay as it advances.
	Epoch int64
	// Cache is the run's artifact cache; calibration probes read and warm
	// it, so a probe never recomputes a cached signature.
	Cache *engine.Cache
	// Stages is the default filter chain, in default order.
	Stages []Stage
	// Tokenizer is the token-index source's tokenizer when the method
	// defaults to the index; nil when the index never applies.
	Tokenizer engine.Tokenizer
	// PinSource, when non-empty, pins the candidate source (normalized
	// name: "partsj", "sorted-loop") — the planner then only reorders the
	// chain. Empty with a non-nil Tokenizer means the source is free.
	PinSource string
	// DynIndex reports that a maintained dynamic token snapshot will serve
	// the index source (no per-run build; prefix tuning does not apply).
	DynIndex bool
	// Workers is the job's pool width (cost estimates are wall-clock based,
	// so it only matters for calibration's mini-runs, which run sequential).
	Workers int
}

// Estimates is the cost model's view of a plan, surfaced by -explain.
type Estimates struct {
	// WindowPairs is the exact number of tree pairs inside the τ size
	// window (the loop source's offer count; an upper bound for the index).
	WindowPairs int64
	// Survival holds, per planned stage, the estimated fraction of offered
	// pairs that survive it (unconditional rates; the product is the chain's
	// estimated selectivity). Nil when the model has no stage observations.
	Survival []float64
	// Candidates is the estimated number of pairs reaching verification.
	Candidates int64
	// CandNs and VerifyNs are the estimated candidate-generation and
	// verification costs, in nanoseconds (0 when the model cannot say).
	CandNs   int64
	VerifyNs int64
}

// Decision is one planned execution: the chain in executed order, the source
// choice, the prefix multiplier, the record to stamp into Stats.Plan, and
// the model's estimates.
type Decision struct {
	// Stages is the selected chain in executed order (a permutation of a
	// subset of the request's stages).
	Stages []Stage
	// UseIndex reports whether the token-index source should run; only
	// meaningful when the request's source was free.
	UseIndex bool
	// PrefixC is the prefix multiplier for Job.PrefixC (0 when no index).
	PrefixC int
	// Record is the plan record for Stats.Plan.
	Record sim.PlanRecord
	// Est carries the cost model's estimates for -explain.
	Est Estimates
}

// Filters returns the decision's chain as engine filters, in executed order.
func (d Decision) Filters() []engine.PairFilter {
	fs := make([]engine.PairFilter, len(d.Stages))
	for i, s := range d.Stages {
		fs[i] = s.Filter
	}
	return fs
}

// Planning thresholds. Relative margins guard against estimate noise;
// absolute floors keep the planner from churning plans (and test
// determinism) for savings nobody can measure.
const (
	// dropMargin: a stage is dropped only when its per-pair cost exceeds
	// this multiple of the downstream work it is expected to save. The
	// margin is deliberately wide: once the planner reorders a chain, a
	// late stage's observed kill rate is conditional on the stages now in
	// front of it, so its saving is systematically underestimated — and
	// sampled predicate costs inflate under machine load. Dropping a stage
	// that pays is far more expensive than keeping one that doesn't quite.
	dropMargin = 4.0
	// chainFloorNs: a reordered/reduced chain replaces the default order
	// only when the predicted whole-join saving exceeds this.
	chainFloorNs = 250e3 // 0.25ms
	// Source switching away from the default (index) needs the alternative
	// to be decisively cheaper and the saving to be worth a plan change;
	// observation-backed estimates get a tighter margin than
	// calibration-only ones.
	sourceRatioObserved   = 0.90
	sourceFloorObservedNs = 500e3 // 0.5ms
	sourceRatioCalibrated = 0.67
	sourceFloorCalibratedNs = 2e6 // 2ms
	// Prefix tuning: lengthen the indexed prefix (sharpening the count
	// threshold) only when chain screening demonstrably dominates posting
	// scans — screening cost must exceed prefixScanFactor times the scan
	// cost, estimated at postScanNs per posting entry.
	prefixScanFactor = 4.0
	postScanNs       = 20.0
	// killEps floors a kill rate in the cost/kill ordering ratio so a
	// stage that killed nothing sorts last instead of dividing by zero.
	killEps = 1e-4
	// defaultVerifyNs stands in for the per-candidate verification cost
	// until the model has observed one.
	defaultVerifyNs = 2000.0
	// minPlanPairs: below this many window pairs the whole join is so small
	// that wall-clock observations are dominated by scheduler noise (a
	// loaded machine inflates a sub-millisecond run arbitrarily) — every
	// query gets the fixed default plan, no calibration runs, and behavior
	// on small collections stays deterministic.
	minPlanPairs = 4096
)

// Plan emits the execution plan for one query. Collections below the token
// index's own cutoff, pinned single-knob pipelines with nothing to decide,
// and queries the model has no (and can get no) data for all come back as
// the fixed default plan; otherwise the decision is cost-based, falling back
// to calibration on a cold corpus (self joins only — cross joins plan from
// whatever self-join observations exist).
func (m *Model) Plan(req Request) Decision {
	wp := m.WindowPairs(req.Trees, req.Split, req.Tau, req.Epoch)
	dec := fixedDecision(req, wp)
	if len(req.Trees) < engine.TokenIndexMinTrees || wp < minPlanPairs {
		return dec
	}
	free := req.Tokenizer != nil && req.PinSource == ""
	if !free && len(req.Stages) == 0 {
		return dec // nothing to decide
	}
	if !m.covered(req, free) {
		if req.Split >= 0 {
			return dec
		}
		m.calibrate(req)
		if !m.covered(req, free) {
			return dec
		}
	}
	if planned, ok := m.decide(req, free, wp); ok {
		return planned
	}
	return dec
}

// fixedDecision is the static default plan: the method's chain in declared
// order, the method's default source, the tokenizer's own prefix length.
func fixedDecision(req Request, wp int64) Decision {
	dec := Decision{Stages: req.Stages, UseIndex: req.Tokenizer != nil}
	dec.Record = sim.PlanRecord{
		Source: req.PinSource,
		Chain:  stageNames(req.Stages),
		Origin: OriginFixed,
	}
	if dec.Record.Source == "" {
		if req.Tokenizer != nil {
			dec.Record.Source = SourceTokenIndex
		} else {
			dec.Record.Source = SourceSortedLoop
		}
	}
	if req.Tokenizer != nil && req.PinSource == "" {
		dec.Record.PrefixC = req.Tokenizer.Slack()
	}
	dec.Est.WindowPairs = wp
	return dec
}

func stageNames(ss []Stage) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// stageEval is one stage's learned profile during a decision.
type stageEval struct {
	stage Stage
	cost  float64 // sampled predicate ns per pair
	kill  float64 // fraction of offered pairs pruned
	real  bool    // backed by completed-run feedback
}

// covered reports whether the model holds usable observations for every
// input the decision needs: each stage's cost and kill rate, the verify
// cost, and — when the source is free — both sources' run costs. Nearest-τ
// observations within the acceptance gap count.
func (m *Model) covered(req Request, free bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range req.Stages {
		if _, ok := m.stageAt(s.Name, req.Tau, req.Epoch); !ok {
			return false
		}
	}
	if len(req.Stages) > 0 {
		m.verify.age(req.Epoch)
		if !usable(&m.verify) {
			return false
		}
	}
	if free {
		for _, src := range []string{SourceSortedLoop, SourceTokenIndex} {
			if _, ok := m.sourceAt(src, req.Tau, req.Epoch); !ok {
				return false
			}
		}
	}
	return true
}

// decide runs the cost model over the request. ok is false when the data
// evaporated between covered and here (decay race) — the caller then emits
// the fixed plan.
func (m *Model) decide(req Request, free bool, wp int64) (Decision, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	evs := make([]stageEval, 0, len(req.Stages))
	allReal := true
	for _, s := range req.Stages {
		o, ok := m.stageAt(s.Name, req.Tau, req.Epoch)
		if !ok {
			return Decision{}, false
		}
		ev := stageEval{
			stage: s,
			cost:  o.ns / o.calls,
			kill:  o.pruned / o.in,
			real:  backedByRuns(o),
		}
		evs = append(evs, ev)
		allReal = allReal && ev.real
	}
	verifyNs := defaultVerifyNs
	m.verify.age(req.Epoch)
	if usable(&m.verify) && m.verify.calls > 0 {
		verifyNs = m.verify.ns / m.verify.calls
	}

	// Chain: order by cost per unit kill (cheap, lethal stages first), then
	// drop stages whose cost exceeds dropMargin times the downstream work
	// they save. The planned chain replaces the default order only when the
	// predicted whole-join saving clears chainFloorNs — below that, plan
	// churn buys nothing and costs determinism.
	planned := orderAndDrop(evs, verifyNs)
	gain := (pipeCost(evs, verifyNs) - pipeCost(planned, verifyNs)) * float64(wp)
	if gain < chainFloorNs {
		planned = evs
	}
	chainNs, survAll := chainProfile(planned)

	// Source: the index is the default; switch to the loop only on a
	// decisive, absolutely-worthwhile predicted saving. The loop's cost is
	// estimable even when it never ran — every window pair crosses the
	// planned chain — but an actual loop observation (calibration's mini
	// run, a WithSortedLoop ablation) is preferred.
	useIndex := req.Tokenizer != nil
	srcName := req.PinSource
	var candEst float64
	offerFrac := 1.0
	if free {
		srcName = SourceTokenIndex
		idxEst, idxReal, idxOK := m.sourceEst(SourceTokenIndex, req, wp)
		loopEst, loopReal, loopOK := m.sourceEst(SourceSortedLoop, req, wp)
		if !loopOK {
			loopEst, loopReal = float64(wp)*chainNs, allReal
			loopOK = chainNs > 0
		}
		if idxOK && loopOK {
			ratio, floor := sourceRatioCalibrated, sourceFloorCalibratedNs
			if idxReal && loopReal {
				ratio, floor = sourceRatioObserved, sourceFloorObservedNs
			}
			if loopEst < ratio*idxEst && idxEst-loopEst > floor {
				useIndex = false
				srcName = SourceSortedLoop
			}
			if useIndex {
				candEst = idxEst
			} else {
				candEst = loopEst
			}
			allReal = allReal && idxReal && loopReal
		} else {
			candEst = loopEst
			allReal = allReal && loopReal
		}
		if useIndex {
			if o, ok := m.sourceAt(SourceTokenIndex, req.Tau, req.Epoch); ok && o.wp >= 1 {
				offerFrac = math.Min(1, o.offers/o.wp)
			}
		}
	} else if srcName == "" {
		srcName = SourceSortedLoop
	}

	// Prefix multiplier: with the index running (and paying a per-run
	// build), lengthen the prefix to 2×Slack when screening work dominates
	// posting scans — the sharper count threshold then converts screenings
	// into skips at a favorable exchange rate. The maintained dynamic
	// snapshot probes full bags and ignores the prefix budget, so no tuning
	// applies there.
	prefixC := 0
	if useIndex && req.Tokenizer != nil {
		prefixC = req.Tokenizer.Slack()
		if !req.DynIndex && req.Tau > 0 {
			if o, ok := m.sourceAt(SourceTokenIndex, req.Tau, req.Epoch); ok && o.skipped > 0 {
				screenNs := (o.offers / o.w) * chainNs
				scanNs := (o.scanned / o.w) * postScanNs
				if screenNs > prefixScanFactor*scanNs {
					prefixC = 2 * req.Tokenizer.Slack()
				}
			}
		}
	}

	origin := OriginCalibrated
	if allReal {
		origin = OriginObserved
	}
	dec := Decision{
		Stages:   stagesOf(planned),
		UseIndex: useIndex,
		PrefixC:  prefixC,
		Record: sim.PlanRecord{
			Source:  srcName,
			Chain:   stageNames(stagesOf(planned)),
			PrefixC: prefixC,
			Origin:  origin,
		},
	}
	dec.Est.WindowPairs = wp
	dec.Est.Survival = make([]float64, len(planned))
	for i, ev := range planned {
		dec.Est.Survival[i] = 1 - ev.kill
	}
	dec.Est.Candidates = int64(float64(wp) * offerFrac * survAll)
	dec.Est.CandNs = int64(candEst)
	dec.Est.VerifyNs = int64(float64(dec.Est.Candidates) * verifyNs)
	return dec, true
}

func stagesOf(evs []stageEval) []Stage {
	ss := make([]Stage, len(evs))
	for i, ev := range evs {
		ss[i] = ev.stage
	}
	return ss
}

// orderAndDrop sorts the stages by cost per unit kill (stable, so ties keep
// the default order) and then, scanning the ordered chain back to front,
// drops every stage whose per-pair cost exceeds dropMargin times the
// downstream work its kills would save (downstream = the surviving pair's
// remaining chain plus its verification).
func orderAndDrop(evs []stageEval, verifyNs float64) []stageEval {
	ordered := make([]stageEval, len(evs))
	copy(ordered, evs)
	sort.SliceStable(ordered, func(a, b int) bool {
		ra := ordered[a].cost / math.Max(ordered[a].kill, killEps)
		rb := ordered[b].cost / math.Max(ordered[b].kill, killEps)
		return ra < rb
	})
	kept := make([]stageEval, 0, len(ordered))
	down := verifyNs
	for k := len(ordered) - 1; k >= 0; k-- {
		ev := ordered[k]
		if ev.cost > dropMargin*ev.kill*down {
			continue
		}
		kept = append(kept, ev)
		down = ev.cost + (1-ev.kill)*down
	}
	// kept was built back to front; restore execution order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}

// pipeCost is the expected per-offered-pair cost of running the chain in the
// given order with verification behind it.
func pipeCost(evs []stageEval, verifyNs float64) float64 {
	cost, surv := chainProfile(evs)
	return cost + surv*verifyNs
}

// chainProfile returns the chain's expected per-pair screening cost and its
// overall survival fraction. Every stage is a lower bound of the same TED,
// so their kills overlap heavily — near-threshold pairs pass all of them,
// far pairs fail most of them. The correlated model (chain survival = the
// minimum stage survival, each stage screening the survivors of the
// sharpest bound so far) tracks measured chains far better than the
// independence product, which multiplies into absurd underestimates.
func chainProfile(evs []stageEval) (chainNs, survival float64) {
	survival = 1.0
	for _, ev := range evs {
		chainNs += survival * ev.cost
		if s := 1 - ev.kill; s < survival {
			survival = s
		}
	}
	return chainNs, survival
}

// sourceEst estimates a source's candidate-stage wall cost for this query by
// scaling its per-run observation: the build part scales with the collection
// size (per-tree prefix construction; zero under a maintained dynamic
// snapshot), the probe part with the window-pair count.
func (m *Model) sourceEst(name string, req Request, wp int64) (ns float64, real, ok bool) {
	o, found := m.sourceAt(name, req.Tau, req.Epoch)
	if !found {
		return 0, false, false
	}
	avgCand := o.candNs / o.w
	avgBuild := o.buildNs / o.w
	probe := avgCand - avgBuild
	if probe < 0 {
		probe = 0
	}
	scaleW, scaleN := 1.0, 1.0
	if avgWp := o.wp / o.w; avgWp >= 1 {
		scaleW = float64(wp) / avgWp
	}
	if avgTrees := o.trees / o.w; avgTrees >= 1 {
		scaleN = float64(len(req.Trees)) / avgTrees
	}
	build := avgBuild * scaleN
	if name == SourceTokenIndex && req.DynIndex {
		build = 0
	}
	return probe*scaleW + build, backedByRuns(o), true
}
