package plan

import (
	"math/rand"
	"testing"

	"treejoin/internal/tree"
)

// chainOfSize builds a unary chain tree with exactly n nodes.
func chainOfSize(lt *tree.LabelTable, n int) *tree.Tree {
	b := tree.NewBuilder(lt)
	p := b.Root("a")
	for i := 1; i < n; i++ {
		p = b.Child(p, "a")
	}
	return b.MustBuild()
}

// bruteWindowPairs is the quadratic reference for countWindowPairs.
func bruteWindowPairs(ts []*tree.Tree, split, tau int) int64 {
	var n int64
	if split < 0 {
		for i := range ts {
			for j := i + 1; j < len(ts); j++ {
				d := ts[i].Size() - ts[j].Size()
				if d < 0 {
					d = -d
				}
				if d <= tau {
					n++
				}
			}
		}
		return n
	}
	for i := 0; i < split; i++ {
		for j := split; j < len(ts); j++ {
			d := ts[i].Size() - ts[j].Size()
			if d < 0 {
				d = -d
			}
			if d <= tau {
				n++
			}
		}
	}
	return n
}

func TestCountWindowPairs(t *testing.T) {
	lt := tree.NewLabelTable()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		ts := make([]*tree.Tree, n)
		for i := range ts {
			ts[i] = chainOfSize(lt, 1+rng.Intn(12))
		}
		for _, tau := range []int{0, 1, 2, 4, 100} {
			if got, want := countWindowPairs(ts, -1, tau), bruteWindowPairs(ts, -1, tau); got != want {
				t.Fatalf("self trial %d τ=%d: %d pairs, want %d", trial, tau, got, want)
			}
			split := 1 + rng.Intn(n-1)
			if got, want := countWindowPairs(ts, split, tau), bruteWindowPairs(ts, split, tau); got != want {
				t.Fatalf("cross trial %d τ=%d split=%d: %d pairs, want %d", trial, tau, split, got, want)
			}
		}
	}
}

func TestObsFoldAndDecay(t *testing.T) {
	var o obs
	if usable(&o) {
		t.Fatal("empty bucket must not be usable")
	}
	o.fold(0, obs{in: 100, pruned: 90, ns: 1000, calls: 10}, true)
	if !usable(&o) || !backedByRuns(&o) {
		t.Fatalf("one real fold must be usable and run-backed: w=%v real=%v", o.w, o.real)
	}
	if kill := o.pruned / o.in; kill != 0.9 {
		t.Fatalf("kill = %v, want 0.9", kill)
	}

	// A calibration fold keeps the bucket usable but decays run-backing.
	cal := obs{}
	cal.fold(0, obs{in: 100, pruned: 50, ns: 1000, calls: 10}, false)
	if !usable(&cal) {
		t.Fatal("calibration fold must be usable")
	}
	if backedByRuns(&cal) {
		t.Fatal("calibration-only bucket must not count as run-backed")
	}

	// Epoch decay: after enough mutation epochs the bucket stops being
	// trusted; ratios stay put (both sums decay alike).
	o.age(8) // 0.8^8 ≈ 0.168 < minWeight
	if usable(&o) {
		t.Fatalf("bucket must decay below trust after 8 epochs: w=%v", o.w)
	}
	if kill := o.pruned / o.in; kill < 0.899 || kill > 0.901 {
		t.Fatalf("decay must preserve ratios: kill = %v", kill)
	}
	// Aging never runs backwards.
	w := o.w
	o.age(3)
	if o.w != w || o.epoch != 8 {
		t.Fatalf("bucket aged backwards: w=%v epoch=%d", o.w, o.epoch)
	}

	// A stale-snapshot fold (run epoch < bucket epoch) lands down-weighted.
	fresh := obs{}
	fresh.fold(8, obs{in: 100, pruned: 90, ns: 1000, calls: 10}, true)
	wBefore := fresh.w
	fresh.fold(0, obs{in: 100, pruned: 0, ns: 1000, calls: 10}, true)
	if gain := fresh.w - wBefore*runRetain; gain >= 0.2 {
		t.Fatalf("stale fold must be down-weighted: gained %v weight", gain)
	}
}

func TestNearestLocked(t *testing.T) {
	mm := make(map[key]*obs)
	at(mm, "PQG", 2).fold(0, obs{in: 100, pruned: 90, ns: 100, calls: 10}, true)
	at(mm, "PQG", 4).fold(0, obs{in: 100, pruned: 50, ns: 100, calls: 10}, true)

	if o, ok := nearestLocked(mm, "PQG", 2, 0); !ok || o.pruned/o.in != 0.9 {
		t.Fatalf("exact τ must win: %+v %v", o, ok)
	}
	// τ=3 has no bucket; both 2 and 4 are within the gap, ties go to the
	// smaller τ (the tighter window).
	if o, ok := nearestLocked(mm, "PQG", 3, 0); !ok || o.pruned/o.in != 0.9 {
		t.Fatalf("tie must prefer smaller τ: %+v %v", o, ok)
	}
	// τ=16 accepts a gap of 1+16/2 = 9 — nothing within reach.
	if _, ok := nearestLocked(mm, "PQG", 16, 0); ok {
		t.Fatal("τ=16 must not borrow a τ=4 observation")
	}
	if _, ok := nearestLocked(mm, "HIST", 2, 0); ok {
		t.Fatal("unknown stage must miss")
	}
}

func TestTauAccept(t *testing.T) {
	cases := []struct {
		tau, got int
		want     bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, false},
		{2, 0, true}, {2, 4, true}, {2, 5, false},
		{4, 1, true}, {4, 0, false}, {4, 7, true}, {4, 8, false},
	}
	for _, c := range cases {
		if got := tauAccept(c.tau, c.got); got != c.want {
			t.Fatalf("tauAccept(%d, %d) = %v, want %v", c.tau, c.got, got, c.want)
		}
	}
}

func TestNormalizeSource(t *testing.T) {
	cases := map[string]string{
		"token-index(euler-grams/q=3)": "token-index",
		"dyn-token-index(labels)":      "token-index",
		"sorted-loop":                  "sorted-loop",
		"partsj":                       "partsj",
		"":                             "",
	}
	for in, want := range cases {
		if got := NormalizeSource(in); got != want {
			t.Fatalf("NormalizeSource(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOrderAndDrop(t *testing.T) {
	cheapLethal := stageEval{stage: Stage{Name: "PQG"}, cost: 100, kill: 0.9}
	dearWeak := stageEval{stage: Stage{Name: "HIST"}, cost: 2000, kill: 0.2}

	// Ordering: cost-per-kill ascending, regardless of input order.
	got := orderAndDrop([]stageEval{dearWeak, cheapLethal}, 50000)
	if len(got) != 2 || got[0].stage.Name != "PQG" || got[1].stage.Name != "HIST" {
		t.Fatalf("order = %v", evalNames(got))
	}

	// Dropping: a stage whose cost dwarfs the verification it saves goes.
	// With verify at 400ns, HIST saves 0.2·(100·... ) — its 2000ns per pair
	// cannot pay for itself behind PQG.
	got = orderAndDrop([]stageEval{dearWeak, cheapLethal}, 400)
	if len(got) != 1 || got[0].stage.Name != "PQG" {
		t.Fatalf("drop pass kept %v, want [PQG]", evalNames(got))
	}

	// Soundness of the pass itself: never drops everything when a stage
	// pays for itself.
	got = orderAndDrop([]stageEval{cheapLethal}, 50000)
	if len(got) != 1 {
		t.Fatalf("kept %v, want [PQG]", evalNames(got))
	}
	if got := orderAndDrop(nil, 1000); len(got) != 0 {
		t.Fatalf("empty chain grew stages: %v", evalNames(got))
	}
}

func TestChainProfile(t *testing.T) {
	evs := []stageEval{
		{stage: Stage{Name: "PQG"}, cost: 100, kill: 0.9},
		{stage: Stage{Name: "HIST"}, cost: 2000, kill: 0.2},
	}
	chainNs, survival := chainProfile(evs)
	// Correlated model: the second stage runs on the first's survivors
	// (100 + 0.1·2000), and chain survival is the strongest stage's
	// survival, not the independence product.
	if chainNs < 299.99 || chainNs > 300.01 {
		t.Fatalf("chainNs = %v, want 300", chainNs)
	}
	if survival < 0.0999 || survival > 0.1001 {
		t.Fatalf("survival = %v, want 0.1 (min across stages, not 0.08)", survival)
	}
}

func evalNames(evs []stageEval) []string {
	names := make([]string, len(evs))
	for i, ev := range evs {
		names[i] = ev.stage.Name
	}
	return names
}

// TestStaleSnapshotFoldDownWeighted pins the epoch-decay ordering that keeps
// a shared model safe across a corpus and its snapshots: a run observed from
// a snapshot pinned at an older epoch folds in scaled by decayPerEpoch^gap,
// and it never rewinds the bucket's epoch — so it cannot cause the live
// evidence to be decayed a second time by the next live observation.
func TestStaleSnapshotFoldDownWeighted(t *testing.T) {
	var o obs
	o.fold(5, obs{in: 100, pruned: 50}, true) // live run at epoch 5
	if o.epoch != 5 {
		t.Fatalf("bucket epoch %d after live fold, want 5", o.epoch)
	}
	liveIn, livePruned := o.in, o.pruned
	// A snapshot 4 epochs behind reports a kill-everything run.
	o.fold(1, obs{in: 100, pruned: 100}, true)
	if o.epoch != 5 {
		t.Fatalf("stale fold rewound the bucket epoch to %d", o.epoch)
	}
	g := 1.0
	for i := 0; i < 4; i++ {
		g *= decayPerEpoch
	}
	wantIn := liveIn*runRetain + g*100
	wantPruned := livePruned*runRetain + g*100
	if diff := o.in - wantIn; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("stale in folded at weight %.4f of its value, want %.4f", o.in/100, wantIn/100)
	}
	if diff := o.pruned - wantPruned; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("stale pruned folded with the wrong weight")
	}
	// The stale run's pull on the selectivity estimate is bounded by its
	// decayed weight share, not its raw counts.
	sel := o.pruned / o.in
	if maxSel := (runRetain*50 + g*100) / (runRetain*100 + g*100); sel > maxSel+1e-9 {
		t.Fatalf("selectivity %.4f exceeds the down-weighted bound %.4f", sel, maxSel)
	}
	// A later live fold ages from epoch 5 — aging to the same epoch is a
	// no-op, so the live evidence is never double-decayed.
	before := o.in
	o.age(5)
	if o.in != before {
		t.Fatal("age(current epoch) decayed the bucket")
	}
}

// TestWindowPairsStaleEpochGuard: the window-pair memo's epoch only ever
// advances. A query pinned to a stale snapshot gets its own exact count but
// must neither flush the live memo nor leave its count behind under a key a
// live query could read (winKey is (n, split, τ) — two memberships of the
// same size would collide).
func TestWindowPairsStaleEpochGuard(t *testing.T) {
	lt := tree.NewLabelTable()
	m := New()
	live := []*tree.Tree{chainOfSize(lt, 1), chainOfSize(lt, 10)}
	stale := []*tree.Tree{chainOfSize(lt, 4), chainOfSize(lt, 4)}
	if got := m.WindowPairs(live, -1, 2, 5); got != 0 {
		t.Fatalf("live count %d, want 0", got)
	}
	if got := m.WindowPairs(stale, -1, 2, 3); got != 1 {
		t.Fatalf("stale-snapshot count %d, want 1 (served from the live memo?)", got)
	}
	if m.winEpoch != 5 {
		t.Fatalf("stale query rewound the memo epoch to %d", m.winEpoch)
	}
	if got := m.WindowPairs(live, -1, 2, 5); got != 0 {
		t.Fatalf("live count %d after stale query, want 0 (memo poisoned)", got)
	}
	// And a mutation's epoch step still flushes the memo forward.
	bigger := []*tree.Tree{chainOfSize(lt, 6), chainOfSize(lt, 7)}
	if got := m.WindowPairs(bigger, -1, 2, 6); got != 1 {
		t.Fatalf("post-mutation count %d, want 1", got)
	}
	if m.winEpoch != 6 {
		t.Fatalf("memo epoch %d, want 6", m.winEpoch)
	}
}
