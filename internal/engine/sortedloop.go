package engine

import "time"

// The sorted nested loop: the candidate source behind BruteForce and every
// lower-bound baseline (STR, SET, HIST, EUL, and the Euler-gram filter).
// Trees are processed in ascending size order; the partners of a probe are
// the preceding trees within the τ size window (for cross joins, those on
// the opposite side), so the size filter is built into the enumeration and
// every unordered pair is offered exactly once — at the probe position of
// its larger tree.
//
// The loop keeps no shared state, so candidate generation parallelises for
// free: probe positions are dealt round-robin across c.Workers tasks
// (position p costs O(p) window work, so contiguous chunks would load the
// last task with most of the quadratic total; striding balances it), and
// each task screens its own pairs through the filter chain. The candidate
// set, and therefore the join result, is identical to the sequential loop's.

type sortedLoop struct{}

// SortedLoop returns the size-ordered nested-loop candidate source.
func SortedLoop() CandidateSource { return sortedLoop{} }

func (sortedLoop) Name() string { return "sorted-loop" }

func (sortedLoop) Tasks(c *Collection, shards int) []Task {
	n := shards
	if c.Workers > n {
		n = c.Workers
	}
	if n < 1 {
		n = 1
	}
	if n > len(c.Order) {
		n = len(c.Order)
	}
	if n == 0 {
		return nil
	}
	tasks := make([]Task, n)
	for s := 0; s < n; s++ {
		s := s
		tasks[s] = func(px *Pipeline) {
			start := time.Now()
			for p := s; p < len(c.Order); p += n {
				if px.Cancelled() {
					break
				}
				ti := c.Order[p]
				lo := c.WindowStart(c.Trees[ti].Size())
				for k := lo; k < p; k++ {
					tj := c.Order[k]
					if c.SameSide(ti, tj) {
						continue
					}
					px.Offer(ti, tj)
				}
			}
			px.Stats().CandTime += time.Since(start)
		}
	}
	return tasks
}
