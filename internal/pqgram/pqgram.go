// Package pqgram implements the pq-gram distance of Augsten, Böhlen and
// Gamper — the alternative tree similarity measure the paper discusses in
// its related work (§5) and names as a target of its "other tree distance
// metrics" future-work direction.
//
// A pq-gram of a tree is a small fixed-shape subtree: a *stem* of p nodes
// (a node and p−1 of its ancestors) and a *base* of q consecutive children
// of the stem's bottom node, with missing positions padded by a dummy label.
// The pq-gram profile is the bag of all pq-grams; two trees are similar when
// their profiles overlap heavily. Unlike the traversal-string and binary
// branch measures, the pq-gram distance is *not* a TED lower bound — it is
// an approximation, cheap to compute (linear time) and robust in practice,
// so it complements rather than replaces the join's exact filters.
package pqgram

import (
	"fmt"
	"hash/fnv"
	"sort"

	"treejoin/internal/tree"
)

// Dummy is the label id used for padding positions ("*" in the original
// paper). It cannot collide with interned labels, which are non-negative.
const Dummy int32 = -1

// Profile is the sorted bag of a tree's pq-grams, each reduced to a 64-bit
// fingerprint of its label tuple. Sorting makes bag intersection a linear
// merge.
type Profile struct {
	P, Q   int
	Hashes []uint64
}

// Len returns the bag size: one pq-gram per (node, child-window) position.
func (pr *Profile) Len() int { return len(pr.Hashes) }

// New computes the pq-gram profile of t for stem length p ≥ 1 and base
// width q ≥ 1.
func New(t *tree.Tree, p, q int) *Profile {
	if p < 1 || q < 1 {
		panic(fmt.Sprintf("pqgram: invalid shape p=%d q=%d", p, q))
	}
	pr := &Profile{P: p, Q: q}
	// stem[0..p-1]: the labels of the p ancestors ending at the current
	// node, Dummy-padded at the top. An explicit stack keeps the walk safe
	// on pathologically deep trees.
	rootStem := make([]int32, p)
	for i := range rootStem {
		rootStem[i] = Dummy
	}
	type frame struct {
		node int32
		stem []int32 // the stem of the node's parent context
	}
	stack := []frame{{t.Root(), rootStem}}
	base := make([]int32, 0, 16)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stem := append(append(make([]int32, 0, p), f.stem[1:]...), t.Nodes[f.node].Label)
		// Build the padded child label window list.
		base = base[:0]
		for i := 0; i < q-1; i++ {
			base = append(base, Dummy)
		}
		nc := 0
		for c := t.Nodes[f.node].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			base = append(base, t.Nodes[c].Label)
			nc++
		}
		if nc == 0 {
			// A leaf contributes exactly one pq-gram with an all-dummy base.
			base = base[:0]
			for i := 0; i < q; i++ {
				base = append(base, Dummy)
			}
		} else {
			for i := 0; i < q-1; i++ {
				base = append(base, Dummy)
			}
		}
		for w := 0; w+q <= len(base); w++ {
			pr.Hashes = append(pr.Hashes, fingerprint(stem, base[w:w+q]))
		}
		for c := t.Nodes[f.node].FirstChild; c != tree.None; c = t.Nodes[c].NextSibling {
			stack = append(stack, frame{c, stem})
		}
	}
	sort.Slice(pr.Hashes, func(i, j int) bool { return pr.Hashes[i] < pr.Hashes[j] })
	return pr
}

func fingerprint(stem, base []int32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	write := func(v int32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	for _, v := range stem {
		write(v)
	}
	write(-2) // separator between stem and base
	for _, v := range base {
		write(v)
	}
	return h.Sum64()
}

// Intersection returns the bag intersection size of two profiles (which must
// share p and q).
func Intersection(a, b *Profile) int {
	if a.P != b.P || a.Q != b.Q {
		panic("pqgram: profiles with different shapes")
	}
	i, j, common := 0, 0, 0
	for i < len(a.Hashes) && j < len(b.Hashes) {
		switch {
		case a.Hashes[i] == b.Hashes[j]:
			common++
			i++
			j++
		case a.Hashes[i] < b.Hashes[j]:
			i++
		default:
			j++
		}
	}
	return common
}

// Distance returns the normalised pq-gram distance in [0, 1]:
// 1 − 2·|P1 ∩ P2| / (|P1| + |P2|). Zero for identical trees; 1 for trees
// with disjoint profiles.
func Distance(a, b *Profile) float64 {
	total := a.Len() + b.Len()
	if total == 0 {
		return 0
	}
	return 1 - 2*float64(Intersection(a, b))/float64(total)
}

// BagDistance returns the un-normalised symmetric bag difference
// |P1| + |P2| − 2·|P1 ∩ P2|, the analogue of the SET baseline's binary
// branch distance.
func BagDistance(a, b *Profile) int {
	return a.Len() + b.Len() - 2*Intersection(a, b)
}

// Join reports every pair of trees whose normalised pq-gram distance is at
// most eps — an *approximate* similarity join (no TED guarantee), useful for
// candidate mining when an exact threshold is not required. Pairs are in
// ascending (I, J) order.
func Join(ts []*tree.Tree, p, q int, eps float64) [][2]int {
	profiles := make([]*Profile, len(ts))
	for i, t := range ts {
		profiles[i] = New(t, p, q)
	}
	var out [][2]int
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if Distance(profiles[i], profiles[j]) <= eps {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}
