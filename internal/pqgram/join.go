package pqgram

import (
	"sort"

	"treejoin/internal/tree"
)

// Indexed approximate join. The naive Join compares all profile pairs; for
// large collections the standard set-similarity machinery applies instead:
//
//   - Size filter. dist(a,b) ≤ eps requires 2·I ≥ (1−eps)(|a|+|b|) with
//     I ≤ min(|a|,|b|), so |b| ≥ |a|·(1−eps)/(1+eps): profiles much smaller
//     than a probe cannot qualify and are skipped wholesale by processing
//     profiles in ascending size order.
//   - Inverted index. Each distinct gram fingerprint maps to the postings of
//     previously-seen profiles containing it (with multiplicity). Probing
//     accumulates Σ min(count_a[h], count_b[h]) per partner — exactly the
//     bag intersection — so the distance test is evaluated from the
//     accumulator without touching profiles that share no gram.
//
// The result is identical to Join's, pair for pair; only the work changes:
// Join is Θ(n²) profile merges, JoinIndexed touches a posting only when a
// probe shares that gram. Hyper-frequent grams (tiny label alphabets) make
// the postings long and erode the gain — the same caveat the SET baseline
// carries — but nothing is lost versus the naive join.

// posting records one profile's multiplicity of a gram.
type posting struct {
	id    int32
	count int32
}

// JoinIndexed reports every pair of trees whose normalised pq-gram distance
// is at most eps, like Join, using a size-ordered inverted-index evaluation.
// Pairs are in ascending (I, J) order.
func JoinIndexed(ts []*tree.Tree, p, q int, eps float64) [][2]int {
	if eps >= 1 {
		// Degenerate threshold: pairs sharing no gram qualify too, which the
		// inverted index cannot surface — every pair is a result anyway.
		return Join(ts, p, q, eps)
	}
	profiles := make([]*Profile, len(ts))
	for i, t := range ts {
		profiles[i] = New(t, p, q)
	}
	// Ascending profile size; the probe is always the largest so far.
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return profiles[order[a]].Len() < profiles[order[b]].Len()
	})

	index := make(map[uint64][]posting)
	overlap := make(map[int32]int32) // partner id -> accumulated min-count
	var out [][2]int
	for _, i := range order {
		pi := profiles[i]
		// Distinct grams of pi with multiplicities (Hashes is sorted).
		clear(overlap)
		for lo := 0; lo < len(pi.Hashes); {
			hi := lo + 1
			for hi < len(pi.Hashes) && pi.Hashes[hi] == pi.Hashes[lo] {
				hi++
			}
			h, cnt := pi.Hashes[lo], int32(hi-lo)
			for _, ps := range index[h] {
				m := ps.count
				if cnt < m {
					m = cnt
				}
				overlap[ps.id] += m
			}
			index[h] = append(index[h], posting{id: int32(i), count: cnt})
			lo = hi
		}
		// minLen: the smallest partner profile that could still qualify.
		minLen := int(float64(pi.Len()) * (1 - eps) / (1 + eps))
		for j, inter := range overlap {
			pj := profiles[j]
			if pj.Len() < minLen {
				continue
			}
			total := pi.Len() + pj.Len()
			if total == 0 || 2*float64(inter) >= (1-eps)*float64(total) {
				a, b := int(j), i
				if a > b {
					a, b = b, a
				}
				out = append(out, [2]int{a, b})
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x][0] != out[y][0] {
			return out[x][0] < out[y][0]
		}
		return out[x][1] < out[y][1]
	})
	return out
}
