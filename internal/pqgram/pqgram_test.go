package pqgram_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/pqgram"
	"treejoin/internal/tree"
)

func randomTree(rng *rand.Rand, maxN int, lt *tree.LabelTable) *tree.Tree {
	n := 1 + rng.Intn(maxN)
	b := tree.NewBuilder(lt)
	b.Root(string(rune('a' + rng.Intn(4))))
	for i := 1; i < n; i++ {
		b.Child(int32(rng.Intn(i)), string(rune('a'+rng.Intn(4))))
	}
	return b.MustBuild()
}

// TestProfileSize: the 2,3-profile of a tree has one gram per leaf plus
// (fanout + q − 1) grams per internal node.
func TestProfileSize(t *testing.T) {
	lt := tree.NewLabelTable()
	cases := []struct {
		src  string
		p, q int
		want int
	}{
		{"{a}", 2, 3, 1},
		{"{a{b}{c}}", 2, 3, 4 + 1 + 1},        // root window count 2+3-1=4, two leaves
		{"{a{b{d}}{c}}", 2, 3, 4 + 3 + 1 + 1}, // root 4, b 1+3-1=3, leaves d c
		{"{a{b}}", 1, 1, 1 + 1},               // p=q=1: one gram per node
		{"{a{b}{c}{d}}", 3, 2, 4 + 3},         // root 3+2-1=4, three leaves
	}
	for _, c := range cases {
		tr := tree.MustParseBracket(c.src, lt)
		pr := pqgram.New(tr, c.p, c.q)
		if pr.Len() != c.want {
			t.Errorf("profile(%s, %d, %d) size = %d, want %d", c.src, c.p, c.q, pr.Len(), c.want)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	lt := tree.NewLabelTable()
	for i := 0; i < 100; i++ {
		a := randomTree(rng, 30, lt)
		b := randomTree(rng, 30, lt)
		pa := pqgram.New(a, 2, 3)
		pb := pqgram.New(b, 2, 3)
		if d := pqgram.Distance(pa, pa); d != 0 {
			t.Fatalf("Distance(a,a) = %f", d)
		}
		dab := pqgram.Distance(pa, pb)
		if dab != pqgram.Distance(pb, pa) {
			t.Fatal("asymmetric")
		}
		if dab < 0 || dab > 1 {
			t.Fatalf("distance out of range: %f", dab)
		}
		if pqgram.BagDistance(pa, pb) < 0 {
			t.Fatal("negative bag distance")
		}
		if tree.Equal(a, b) && dab != 0 {
			t.Fatal("equal trees with nonzero distance")
		}
	}
}

// TestDistanceTracksEdits: small edits yield small normalised distance,
// disjoint-label trees yield distance 1.
func TestDistanceTracksEdits(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b{c}{d}}{e{f}{g}}{h}}", lt)
	oneEdit := tree.Rename(a, 3, "x")
	pa := pqgram.New(a, 2, 3)
	pe := pqgram.New(oneEdit, 2, 3)
	if d := pqgram.Distance(pa, pe); d <= 0 || d > 0.6 {
		t.Errorf("one rename moved distance to %f", d)
	}
	disjoint := tree.MustParseBracket("{z{y{w}{v}}{u{t}{s}}{r}}", lt)
	if d := pqgram.Distance(pa, pqgram.New(disjoint, 2, 3)); d != 1 {
		t.Errorf("disjoint labels distance = %f, want 1", d)
	}
}

func TestJoinApproximate(t *testing.T) {
	lt := tree.NewLabelTable()
	ts := []*tree.Tree{
		tree.MustParseBracket("{a{b}{c}{d}}", lt),
		tree.MustParseBracket("{a{b}{c}{e}}", lt), // near-dup of 0
		tree.MustParseBracket("{z{y{x{w}}}}", lt), // unrelated
	}
	pairs := pqgram.Join(ts, 2, 3, 0.5)
	if len(pairs) != 1 || pairs[0] != [2]int{0, 1} {
		t.Fatalf("approximate join = %v", pairs)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a}", lt)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on profile shape mismatch")
		}
	}()
	pqgram.Distance(pqgram.New(a, 2, 3), pqgram.New(a, 1, 2))
}

func TestDeepChain(t *testing.T) {
	b := tree.NewBuilder(nil)
	cur := b.Root("a")
	for i := 0; i < 50000; i++ {
		cur = b.Child(cur, "a")
	}
	tr := b.MustBuild()
	pr := pqgram.New(tr, 2, 3)
	// Each of the 50000 internal nodes has one child: 1+3−1 = 3 windows;
	// the single leaf contributes 1.
	if want := 3*(tr.Size()-1) + 1; pr.Len() != want {
		t.Fatalf("chain profile = %d, want %d", pr.Len(), want)
	}
}
