package pqgram

import (
	"fmt"
	"sort"

	"treejoin/internal/engine"
	"treejoin/internal/tree"
)

// The exact-join cousin of the pq-gram profile. The pq-gram distance itself
// is *not* a TED lower bound (see the package comment), so it cannot prune
// pairs in an exact join. Applying the same machinery — bag of fixed-shape
// local fingerprints, sorted-merge intersection — to q-grams of the tree's
// Euler tour instead yields a provable bound:
//
//   - each node edit operation changes at most 2 symbols of the Euler string
//     (a node's open/close symbols bracket its subtree's contiguous tour
//     substring, so delete removes exactly those 2 symbols, insert adds 2,
//     rename substitutes 2 — the EUL baseline's observation);
//   - each symbol edit changes at most q q-grams on either side: at most q
//     windows contain the edited position before the edit and at most q
//     after, so the bag symmetric difference moves by at most 2q;
//   - the bag symmetric difference is a metric (L1 on gram-count vectors),
//     so the changes add up along an optimal edit script.
//
// Hence |G_q(T1) △ G_q(T2)| ≤ 4q·TED(T1, T2), and a pair may be pruned when
// its gram-bag distance exceeds 4qτ; see DESIGN.md for the full derivation.
// Like the pq-gram profile, grams are reduced to 64-bit fingerprints — a
// fingerprint collision can only enlarge the measured intersection, i.e.
// shrink the measured distance, so collisions keep pairs rather than losing
// them and the filter stays sound.

// DefaultQ is the Euler-gram window width used by the public MethodPQGram
// join: wide enough to see local structure, narrow enough that the 4q·TED
// slack still prunes at small τ.
const DefaultQ = 3

// GramProfile is the sorted bag of a tree's Euler-tour q-grams, each reduced
// to a 64-bit fingerprint.
type GramProfile struct {
	Q      int
	Hashes []uint64
}

// Len returns the bag size: max(0, 2·|T| − q + 1) windows.
func (g *GramProfile) Len() int { return len(g.Hashes) }

// NewGrams computes the Euler-tour q-gram profile of t for window width
// q ≥ 1. Open and close symbols of equal labels stay distinct (label L maps
// to 2L descending and 2L+1 ascending, as in the EUL baseline).
func NewGrams(t *tree.Tree, q int) *GramProfile {
	if q < 1 {
		panic(fmt.Sprintf("pqgram: invalid gram width q=%d", q))
	}
	g := &GramProfile{Q: q, Hashes: gramHashes(t, q)}
	sort.Slice(g.Hashes, func(i, j int) bool { return g.Hashes[i] < g.Hashes[j] })
	return g
}

// gramHashes returns the fingerprints of t's Euler-tour q-gram windows, in
// tour order: the shared tokenisation behind both the sorted GramProfile and
// the engine's token index.
func gramHashes(t *tree.Tree, q int) []uint64 {
	euler := tree.EulerString(t)
	if len(euler) < q {
		return nil
	}
	out := make([]uint64, len(euler)-q+1)
	for w := range out {
		h := offset64
		for _, v := range euler[w : w+q] {
			h = fnvMix(h, v)
		}
		out[w] = h
	}
	return out
}

// FNV-1a over the 4 little-endian bytes of each symbol, inlined to keep the
// per-window cost at a handful of arithmetic ops.
const (
	offset64 uint64 = 14695981039346656037
	prime64  uint64 = 1099511628211
)

func fnvMix(h uint64, v int32) uint64 {
	u := uint32(v)
	h = (h ^ uint64(u&0xff)) * prime64
	h = (h ^ uint64((u>>8)&0xff)) * prime64
	h = (h ^ uint64((u>>16)&0xff)) * prime64
	h = (h ^ uint64((u>>24)&0xff)) * prime64
	return h
}

// GramBagDistance returns the bag symmetric difference |G1| + |G2| − 2|G1∩G2|
// of two gram profiles (which must share q).
func GramBagDistance(a, b *GramProfile) int {
	if a.Q != b.Q {
		panic("pqgram: gram profiles with different widths")
	}
	i, j, common := 0, 0, 0
	for i < len(a.Hashes) && j < len(b.Hashes) {
		switch {
		case a.Hashes[i] == b.Hashes[j]:
			common++
			i++
			j++
		case a.Hashes[i] < b.Hashes[j]:
			i++
		default:
			j++
		}
	}
	return len(a.Hashes) + len(b.Hashes) - 2*common
}

// GramLowerBound returns the Euler-gram TED lower bound ⌈bag/(4q)⌉.
func GramLowerBound(a, b *GramProfile) int {
	return (GramBagDistance(a, b) + 4*a.Q - 1) / (4 * a.Q)
}

// Tokenizer returns the Euler-tour q-gram tokenisation as an
// engine.Tokenizer for the token inverted-index candidate source: the token
// multiset is the same gram fingerprint bag NewGrams profiles, and the bag
// bound is the same |G_q(T1) △ G_q(T2)| ≤ 4q·TED(T1, T2) the filter rests
// on, so Slack() = 4q. q ≤ 0 selects DefaultQ. A fingerprint collision
// merges two gram bins, which can only increase measured overlaps — pairs
// are kept, not lost, so index pruning stays sound. Bag size is 2·|T| − q + 1
// (clamped at 0), monotone in tree size as the source requires. Unlike
// NewGrams the tokens come back unsorted (in tour order): the index
// normalises bags with its own sort, so sorting here would be done twice.
func Tokenizer(q int) engine.Tokenizer {
	if q <= 0 {
		q = DefaultQ
	}
	return engine.NewTokenizer(fmt.Sprintf("euler-grams/q=%d", q), 4*q, func(t *tree.Tree) []uint64 {
		return gramHashes(t, q)
	})
}

// Filter returns the Euler-gram lower bound as an engine pipeline stage:
// pairs whose gram-bag distance exceeds 4qτ are pruned. q ≤ 0 selects
// DefaultQ. This is the filter behind the public MethodPQGram and
// PrefilterPQGram; the approximate pq-gram joins (Join, JoinIndexed) remain
// separate because their distance carries no TED guarantee.
func Filter(q int) engine.PairFilter {
	if q <= 0 {
		q = DefaultQ
	}
	return engine.NewFilter("PQG", func(c *engine.Collection) func(i, j int) bool {
		// Gram bags depend on q but not on τ; the cache key records q so
		// differently-parameterised filters never alias.
		key := fmt.Sprintf("pqg/grams/q=%d", q)
		profiles := engine.Cached(c.Cache(), key, c.Trees, func(t *tree.Tree) *GramProfile {
			return NewGrams(t, q)
		})
		limit := 4 * q * c.Tau
		return func(i, j int) bool {
			return GramBagDistance(profiles[i], profiles[j]) <= limit
		}
	})
}
