package pqgram_test

import (
	"math/rand"
	"testing"

	"treejoin/internal/pqgram"
	"treejoin/internal/synth"
	"treejoin/internal/ted"
	"treejoin/internal/tree"
)

// TestGramProfileBasics: window counts, identical trees, and the q < window
// degenerate case.
func TestGramProfileBasics(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c}}", lt)
	g := pqgram.NewGrams(a, 3)
	if g.Len() != 2*a.Size()-3+1 {
		t.Fatalf("gram count %d, want %d", g.Len(), 2*a.Size()-3+1)
	}
	b := tree.MustParseBracket("{a{b}{c}}", lt)
	if d := pqgram.GramBagDistance(pqgram.NewGrams(a, 3), pqgram.NewGrams(b, 3)); d != 0 {
		t.Fatalf("identical trees at distance %d", d)
	}
	single := tree.MustParseBracket("{a}", lt)
	if g := pqgram.NewGrams(single, 3); g.Len() != 0 {
		t.Fatalf("single-node tree has %d 3-grams", g.Len())
	}
	if d := pqgram.GramLowerBound(pqgram.NewGrams(single, 3), pqgram.NewGrams(a, 3)); d > 2 {
		t.Fatalf("lower bound %d exceeds TED 2", d)
	}
}

// TestGramLowerBoundSound is the soundness property test: on randomized
// corpora, the Euler-gram lower bound ⌈|G1 △ G2|/(4q)⌉ never exceeds the
// exact TED — the invariant that lets MethodPQGram prune without losing
// results.
func TestGramLowerBoundSound(t *testing.T) {
	for _, q := range []int{1, 2, 3, 4} {
		for seed := int64(0); seed < 4; seed++ {
			ts := synth.Synthetic(30, 100+seed)
			profiles := make([]*pqgram.GramProfile, len(ts))
			for i, tr := range ts {
				profiles[i] = pqgram.NewGrams(tr, q)
			}
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 200; trial++ {
				i, j := rng.Intn(len(ts)), rng.Intn(len(ts))
				d := ted.Distance(ts[i], ts[j])
				if lb := pqgram.GramLowerBound(profiles[i], profiles[j]); lb > d {
					t.Fatalf("q=%d seed=%d: lower bound %d > TED %d for trees %d,%d",
						q, seed, lb, d, i, j)
				}
			}
		}
	}
}

// TestGramBoundTightOnEdits: single-edit neighbours stay within the 4q
// budget (the per-operation constant of the bound's proof).
func TestGramBoundTightOnEdits(t *testing.T) {
	lt := tree.NewLabelTable()
	base := tree.MustParseBracket("{a{b{c}{d}}{e{f}}}", lt)
	variants := []string{
		"{a{b{c}{d}}{e{f}{g}}}", // insert a leaf
		"{a{b{c}}{e{f}}}",       // delete a leaf
		"{a{b{c}{d}}{e{x}}}",    // rename a leaf
		"{a{b{c}{d}{f}}}",       // delete internal node e (children splice up)
	}
	for q := 1; q <= 4; q++ {
		pb := pqgram.NewGrams(base, q)
		for _, s := range variants {
			v := tree.MustParseBracket(s, lt)
			d := ted.Distance(base, v)
			bag := pqgram.GramBagDistance(pb, pqgram.NewGrams(v, q))
			if bag > 4*q*d {
				t.Fatalf("q=%d %s: bag distance %d exceeds 4q·TED = %d", q, s, bag, 4*q*d)
			}
		}
	}
}
