package pqgram_test

import (
	"testing"

	"treejoin/internal/baseline"
	"treejoin/internal/pqgram"
	"treejoin/internal/synth"
	"treejoin/internal/tree"
)

// TestJoinIndexedMatchesNaive: the inverted-index join returns exactly the
// naive join's pairs across thresholds and collections.
func TestJoinIndexedMatchesNaive(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		ts := synth.Synthetic(80, seed)
		for _, eps := range []float64{0, 0.1, 0.3, 0.6, 1.0} {
			want := pqgram.Join(ts, 2, 3, eps)
			got := pqgram.JoinIndexed(ts, 2, 3, eps)
			if len(got) != len(want) {
				t.Fatalf("seed=%d eps=%.1f: %d pairs, want %d", seed, eps, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed=%d eps=%.1f: pair %d = %v, want %v", seed, eps, i, got[i], want[i])
				}
			}
		}
	}
}

// TestJoinIndexedShapes: other (p, q) shapes agree too.
func TestJoinIndexedShapes(t *testing.T) {
	ts := synth.Synthetic(50, 7)
	for _, pq := range [][2]int{{1, 1}, {1, 3}, {3, 2}, {2, 4}} {
		want := pqgram.Join(ts, pq[0], pq[1], 0.4)
		got := pqgram.JoinIndexed(ts, pq[0], pq[1], 0.4)
		if len(got) != len(want) {
			t.Fatalf("p=%d q=%d: %d pairs, want %d", pq[0], pq[1], len(got), len(want))
		}
	}
}

// TestJoinIndexedIdenticalTrees: eps = 0 surfaces exactly the
// identical-profile pairs.
func TestJoinIndexedIdenticalTrees(t *testing.T) {
	lt := tree.NewLabelTable()
	a := tree.MustParseBracket("{a{b}{c{d}}}", lt)
	ts := []*tree.Tree{a, a.Clone(), tree.MustParseBracket("{x{y}}", lt)}
	got := pqgram.JoinIndexed(ts, 2, 3, 0)
	if len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Fatalf("got %v", got)
	}
}

// TestApproxJoinRecall: on clustered near-duplicate data the pq-gram join at
// a moderate eps recovers a large fraction of the true TED join (recall),
// the quality claim of approximate filters. This is a statistical property
// of the generator, pinned with a fixed seed.
func TestApproxJoinRecall(t *testing.T) {
	ts := synth.Synthetic(120, 13)
	exact, _ := baseline.BruteForce(ts, baseline.Options{Tau: 3})
	if len(exact) == 0 {
		t.Fatal("generator produced no similar pairs")
	}
	approx := pqgram.JoinIndexed(ts, 2, 3, 0.5)
	inApprox := make(map[[2]int]bool, len(approx))
	for _, p := range approx {
		inApprox[p] = true
	}
	hits := 0
	for _, p := range exact {
		if inApprox[[2]int{p.I, p.J}] {
			hits++
		}
	}
	recall := float64(hits) / float64(len(exact))
	if recall < 0.8 {
		t.Fatalf("recall %.2f below 0.8 (%d of %d)", recall, hits, len(exact))
	}
}

func BenchmarkJoinNaive(b *testing.B) {
	ts := synth.Synthetic(200, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pqgram.Join(ts, 2, 3, 0.3)
	}
}

func BenchmarkJoinIndexed(b *testing.B) {
	ts := synth.Synthetic(200, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pqgram.JoinIndexed(ts, 2, 3, 0.3)
	}
}
