// The allocation regression gate of the batched arena verify path, at the
// public-API level: once a corpus is warm, a join's verification allocates
// nothing per candidate — the per-worker scratch, the cached arena views, and
// the chunked batching keep the hot loop on pre-owned memory, so total join
// allocations are a small constant regardless of how many pairs the verifier
// decides. internal/engine's TestArenaVerifierZeroAllocs enforces the strict
// zero on the verifier loop itself; this test enforces that nothing between
// the public API and that loop re-introduces per-pair garbage.
package treejoin_test

import (
	"context"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func TestWarmJoinAllocationGate(t *testing.T) {
	ctx := context.Background()
	ts := synth.Generate(synth.SyntheticParams(48, 4, 8, 16, 56, 17))
	cp := mustCorpus(t, ts)

	// The brute-force source feeds every size-window pair straight to the
	// verifier — the candidate count dwarfs the join's fixed overhead, so a
	// per-pair allocation anywhere on the verify path would blow the budget
	// by an order of magnitude. Sequential workers keep the measurement
	// deterministic (goroutine startup would charge the pool, not the path).
	opts := []treejoin.Option{treejoin.WithMethod(treejoin.MethodBruteForce), treejoin.WithWorkers(1)}
	var st treejoin.Stats
	if _, _, err := cp.SelfJoin(ctx, 4, append(opts, treejoin.WithStats(&st))...); err != nil {
		t.Fatal(err) // also warms the corpus: arenas, signatures, preps
	}
	if st.Candidates < 400 {
		t.Fatalf("fixture too small to gate on: %d candidates", st.Candidates)
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := cp.SelfJoin(ctx, 4, opts...); err != nil {
			t.Fatal(err)
		}
	})
	// Measured fixed overhead is ~50 allocations (job setup, pipeline,
	// result slice); the budget leaves 3× headroom while staying far below
	// one allocation per candidate (~500 here). If this fails, something on
	// the warm verify path started allocating per pair.
	if budget := 150.0; allocs > budget {
		t.Fatalf("warm join allocated %.0f times for %d candidates (budget %.0f): the verify path is no longer allocation-free",
			allocs, st.Candidates, budget)
	}
}
