package treejoin_test

import (
	"fmt"
	"strings"
	"testing"

	"treejoin"
	"treejoin/internal/synth"
)

func TestPublicMappingAndScript(t *testing.T) {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{a{b}{c{d}}}", lt)
	b := treejoin.MustParseBracket("{a{b}{x{d}}{e}}", lt)
	dist, pairs := treejoin.Mapping(a, b)
	if dist != 2 { // rename c->x, insert e
		t.Fatalf("dist = %d", dist)
	}
	if len(pairs) != a.Size() {
		t.Fatalf("mapping pairs = %d", len(pairs))
	}
	d2, script := treejoin.EditScript(a, b)
	if d2 != dist || len(script) != dist {
		t.Fatalf("script: dist=%d len=%d", d2, len(script))
	}
	out := treejoin.FormatEditScript(a, b, script)
	if !strings.Contains(out, `rename "c" -> "x"`) || !strings.Contains(out, `insert "e"`) {
		t.Fatalf("formatted script = %q", out)
	}
}

func TestPublicSearchIndex(t *testing.T) {
	ts := synth.Synthetic(80, 7)
	ix := treejoin.NewIndex(ts, 2)
	if ix.Len() != len(ts) {
		t.Fatalf("Len = %d", ix.Len())
	}
	// Every collection member finds itself at distance 0.
	for i := 0; i < 10; i++ {
		ms := ix.Search(ts[i])
		self := false
		for _, m := range ms {
			if m.Pos == i && m.Dist != 0 {
				t.Fatalf("self distance %d", m.Dist)
			}
			if m.Pos == i {
				self = true
			}
			if m.Dist > 2 {
				t.Fatalf("match beyond threshold: %v", m)
			}
		}
		if !self {
			t.Fatalf("tree %d did not match itself", i)
		}
	}
	// Search results agree with SelfJoin pairs for in-collection queries.
	pairs, _ := treejoin.SelfJoin(ts, 2)
	inJoin := map[[2]int]bool{}
	for _, p := range pairs {
		inJoin[[2]int{p.I, p.J}] = true
		inJoin[[2]int{p.J, p.I}] = true
	}
	for i := 0; i < 20; i++ {
		for _, m := range ix.Search(ts[i]) {
			if m.Pos == i {
				continue
			}
			if !inJoin[[2]int{i, m.Pos}] {
				t.Fatalf("search found (%d,%d) not in join", i, m.Pos)
			}
		}
	}
}

func ExampleEditScript() {
	lt := treejoin.NewLabelTable()
	a := treejoin.MustParseBracket("{html{body{p{old text}}}}", lt)
	b := treejoin.MustParseBracket("{html{body{p{new text}}{footer}}}", lt)
	dist, script := treejoin.EditScript(a, b)
	fmt.Printf("distance %d\n", dist)
	fmt.Print(treejoin.FormatEditScript(a, b, script))
	// Output:
	// distance 2
	// rename "old text" -> "new text"
	// insert "footer"
}

func ExampleIndex_Search() {
	lt := treejoin.NewLabelTable()
	ts := []*treejoin.Tree{
		treejoin.MustParseBracket("{a{b}{c}}", lt),
		treejoin.MustParseBracket("{a{b}{d}}", lt),
		treejoin.MustParseBracket("{z{z{z}}}", lt),
	}
	ix := treejoin.NewIndex(ts, 1)
	for _, m := range ix.Search(treejoin.MustParseBracket("{a{b}{e}}", lt)) {
		fmt.Printf("tree %d at distance %d\n", m.Pos, m.Dist)
	}
	// Output:
	// tree 0 at distance 1
	// tree 1 at distance 1
}
